package core

import (
	"fmt"
	"math/rand"
	"sort"

	"pts/internal/pvm"
	"pts/internal/rng"
	"pts/internal/sched"
	"pts/internal/tabu"
)

// tswRun is the tabu search worker body (paper Fig. 3). Per global
// iteration it diversifies with respect to its own element range, runs
// LocalIters tabu iterations driven by its CLWs, reports its best
// (solution + tabu list) to the master, and adopts the broadcast global
// best. Rounds are driven by the master's verdicts: a TagGlobal starts
// the next round, a TagStop ends the run — so the master alone decides
// when a cancelled run winds down.
//
// In adaptive mode (Config.Adaptive) the TSW additionally owns a
// scheduler over its CLWs: their element ranges are seeded from the
// declared machine speeds, re-partitioned at every resync barrier to
// track observed throughput, and a CLW whose hosting process dies
// (pvm.TagExit) is written off with its range folded back into the
// survivors instead of stalling the protocol. With respawn enabled
// (the adaptive default) the TSW additionally asks the master for a
// replacement, which it seeds with its current solution at the next
// resync barrier — restoring the lost parallelism — and piggybacks a
// recovery checkpoint on its reports so the master can resurrect the
// TSW itself if its hosting process dies.
//
// resume, when non-nil, is the checkpoint this TSW continues from: it
// skips the TagInit handshake, restores the dead predecessor's search
// state, re-attaches the surviving CLWs (re-parenting them with a
// fresh TagInit) and re-arms their exit watches before entering the
// round loop. A checkpoint marked Restart crossed a master restart:
// its CLW task IDs died with the old master's run, so a fresh CLW set
// is spawned instead, and with SkipRound also set the TSW skips
// straight to the verdict wait — the checkpointed round is already in
// the master's snapshot.
func tswRun(env pvm.Env, problem Problem, cfg Config, master pvm.TaskID, resume *tswCheckpoint) {
	list := tabu.NewList()
	var (
		prob     State
		tune     Tuning
		freq     *tabu.Frequency
		tswRand  *rand.Rand
		iter     int64
		stats    WorkerStats
		best     float64
		bestPerm []int32 // reused buffer; copied on report
		cs       *clwSet
	)
	var divLo, divHi int32 // diversification range (master rebalances it)
	var pending []improvement
	reports := 0
	acceptedSinceRefresh := 0

	if resume == nil {
		init := env.Recv(TagInit).Data.(initMsg)
		prob = mustState(env, problem, init.Perm)
		configureEval(prob, cfg, false) // no pool: TSWs never batch-evaluate
		tune = cfg.tuningFor(init.WorkerIdx)
		freq = tabu.NewFrequency(prob.Size())
		tswRand = workerRand(env, cfg, "tsw")
		best = prob.Cost()
		bestPerm = prob.Snapshot()
		divLo, divHi = init.RangeLo, init.RangeHi

		// Spawn this worker's CLWs once; they live for the whole run and
		// sit on the machines the assignment policy dictates.
		cs = newCLWSet(env, problem, cfg, tune, init, prob.Size(), master)
		if cfg.checkpoints() {
			// The spawn-time checkpoint closes the recovery gap before the
			// first report: the master can resurrect this TSW (and find its
			// CLWs) from the instant they exist. Sent on the same channel
			// the CLW spawns went through, so it can never trail them.
			ck := buildCheckpoint(init.WorkerIdx, prob, list, freq, tswRand, iter, stats, best, bestPerm, divLo, divHi, reports, acceptedSinceRefresh, cs)
			env.Send(master, TagCheckpoint, ck)
			if cfg.durable() {
				tswRand = selfReseed(ck.RandSeed)
			}
		}
	} else {
		ck := resume
		prob = mustState(env, problem, ck.Perm)
		configureEval(prob, cfg, false)
		tune = cfg.tuningFor(ck.WorkerIdx)
		freq = tabu.NewFrequency(prob.Size())
		freq.Import(ck.Freq)
		iter = ck.Iter
		list.Import(ck.Tabu, iter)
		stats = ck.Stats
		best = ck.Best
		bestPerm = append([]int32(nil), ck.BestPerm...)
		divLo, divHi = ck.DivLo, ck.DivHi
		reports = ck.Reports
		acceptedSinceRefresh = ck.AcceptedRefresh
		// The predecessor drew RandSeed from its own stream at checkpoint
		// time, so recovery continues the sampling trajectory instead of
		// replaying the run's beginning under a new spawn-path stream.
		// (In durable runs the predecessor reseeded itself from the same
		// value, which is what makes the two trajectories identical.)
		tswRand = rng.New(ck.RandSeed)
		if ck.Restart {
			// Master restart: the transport aborted every worker task with
			// the old master, so there are no survivors to adopt — spawn a
			// fresh CLW set over the checkpointed solution and range. No
			// re-announce either: the master's ledger was seeded from the
			// same snapshot this checkpoint came out of, and building one
			// here would advance the restored random stream.
			cs = newCLWSet(env, problem, cfg, tune, initMsg{
				Perm:      ck.Perm,
				RangeLo:   ck.DivLo,
				RangeHi:   ck.DivHi,
				WorkerIdx: ck.WorkerIdx,
			}, prob.Size(), master)
		} else {
			cs = adoptCLWSet(env, cfg, tune, ck, master)
			// Re-announce the adopted state immediately, like the fresh-spawn
			// checkpoint: the master's ledger of handed-over replacements is
			// pruned by it, and a successor dying straight away resumes from
			// this attachment table instead of the predecessor's stale one.
			ack := buildCheckpoint(ck.WorkerIdx, prob, list, freq, tswRand, iter, stats, best, bestPerm, divLo, divHi, reports, acceptedSinceRefresh, cs)
			env.Send(master, TagCheckpoint, ack)
			if cfg.durable() {
				tswRand = selfReseed(ack.RandSeed)
			}
		}
	}
	staWork := workSTA(cfg, prob.Size())

	noteBest := func() {
		if c := prob.Cost(); c < best {
			best = c
			bestPerm = snapshotInto(prob, bestPerm)
			pending = append(pending, improvement{Time: env.Now(), Cost: c})
		}
	}

	// syncCLWs broadcasts the chosen move of this iteration.
	syncCLWs := func(chosen tabu.CompoundMove) {
		for j, id := range cs.ids {
			if cs.live[j] {
				env.Send(id, TagSync, syncMsg{Chosen: chosen})
			}
		}
	}

	// Hot-loop scratch, reused across every local iteration so the
	// selection path allocates only when a move is actually accepted.
	collector := newCandCollector(cs)
	var moves []tabu.CompoundMove
	var selSc tabu.SelectScratch

	firstRound := resume == nil
	// A master-restart resume re-enters the protocol at the verdict
	// wait: its checkpointed round is already folded into the master's
	// snapshot, and the master's kick-off TagGlobal starts the next one.
	skipRound := resume != nil && resume.SkipRound
	for {
		forcedByMaster := false
		if skipRound {
			skipRound = false
		} else {
			// Cooperative cancellation: skip the round's search work and
			// report immediately; the master will answer with TagStop once it
			// has observed the cancellation itself. A TSW whose CLWs all died
			// likewise degrades to reporting its standing best.
			if !env.Cancelled() && cs.alive+len(cs.pend) > 0 {
				// Diversification w.r.t. this worker's own element range (Kelly
				// et al. [10]): forced swaps of the least-moved elements of the
				// range.
				if tune.DiversifyDepth > 0 {
					diversify(prob, env, tswRand, freq, list, iter, cfg, tune, divLo, divHi)
					stats.Diversifications++
					refresh(prob)
					env.Work(staWork)
					noteBest()
				}
				// The resync barrier: adaptive re-partitions and replacement
				// seeding only ever happen here, immediately before the full
				// state push, so no candidate built against an old range (or
				// an unseeded worker) is in flight.
				newly := cs.revivePending()
				if (!firstRound || len(newly) > 0) && cs.rebalance(env) {
					stats.Rebalances++
				}
				// Durable runs reseed every CLW at the barrier: exactly
				// Config.CLWs draws in slot order, liveness notwithstanding, so
				// this stream's consumption — and with it every CLW's stream —
				// is a pure function of the checkpointed state.
				var reseeds []uint64
				if cfg.durable() {
					reseeds = make([]uint64, cfg.CLWs)
					for j := range reseeds {
						reseeds[j] = tswRand.Uint64()
					}
				}
				perm := prob.Snapshot()
				for j, id := range cs.ids {
					if cs.live[j] {
						sm := stateMsg{Perm: perm}
						if reseeds != nil {
							sm.Reseed, sm.HasReseed = reseeds[j], true
						}
						env.Send(id, TagNewState, sm)
					}
				}
				cs.attach(env, newly, perm, reseeds)

				for l := 0; l < cfg.LocalIters; l++ {
					// Heterogeneity: the master may force us to report early;
					// a cancelled context forces everyone at once.
					if _, ok := env.TryRecv(TagReportNow); ok {
						forcedByMaster = true
						stats.ForcedReports++
						break
					}
					if env.Cancelled() {
						break
					}
					stats.LocalIters++
					iter++

					// Fan the candidate construction out to the CLWs.
					for j, id := range cs.ids {
						if cs.live[j] {
							env.Send(id, TagSearch, nil)
						}
					}
					cands := collector.collect(env, cfg.HalfSync, &stats)
					if len(cands) == 0 {
						break // every CLW died mid-iteration
					}
					env.Work(float64(len(cands)) * cfg.WorkPerTrial) // selection cost

					moves = moves[:0]
					for _, c := range cands {
						moves = append(moves, c.Move)
					}
					verdict := tabu.SelectAdmissibleBatch(moves, prob.Cost(), best, list, iter, &selSc)
					var chosen tabu.CompoundMove
					if verdict.Index >= 0 {
						chosen = moves[verdict.Index]
						chosen.Apply(prob)
						env.Work(float64(len(chosen.Swaps)) * cfg.WorkPerTrial)
						for _, s := range chosen.Swaps {
							list.Add(s.Attribute(), iter+int64(tune.Tenure))
						}
						freq.BumpMove(&chosen)
						stats.MovesAccepted++
						acceptedSinceRefresh++
						noteBest()
					}
					stats.TabuRejected += int64(verdict.TabuRejected)
					if verdict.Aspired {
						stats.Aspirations++
					}
					if verdict.Fallback {
						stats.Fallbacks++
					}
					syncCLWs(chosen)

					if cfg.RefreshEvery > 0 && acceptedSinceRefresh >= cfg.RefreshEvery {
						acceptedSinceRefresh = 0
						refresh(prob)
						env.Work(staWork)
						noteBest()
					}
				}
			}
			firstRound = false

			// Report the best to the master (solution + tabu list, §4.1). The
			// permutation is copied because bestPerm is a reused buffer the
			// next round keeps writing into. Every checkpointEvery-th report
			// piggybacks the recovery checkpoint.
			reports++
			msg := bestMsg{
				Cost:   best,
				Perm:   append([]int32(nil), bestPerm...),
				Tabu:   list.Export(iter),
				Points: pending,
				Forced: forcedByMaster,
				Stats:  stats,
			}
			if cfg.checkpoints() && reports%cfg.checkpointEvery() == 0 {
				ck := buildCheckpoint(cs.widx, prob, list, freq, tswRand, iter, stats, best, bestPerm, divLo, divHi, reports, acceptedSinceRefresh, cs)
				msg.Checkpoint = &ck
				if cfg.durable() {
					// Continue from the seed just published: a successor
					// restoring rng.New(RandSeed) then carries exactly this
					// stream, which is what makes a resumed durable run
					// reproduce the uninterrupted one.
					tswRand = selfReseed(ck.RandSeed)
				}
			}
			env.Send(master, TagBest, msg)
			pending = nil
		}

		// Wait for the verdict; ignore stale force requests.
		for {
			m := env.Recv(TagGlobal, TagStop, TagReportNow, pvm.TagExit, TagRespawnAck)
			if m.Tag == TagReportNow {
				continue
			}
			if m.Tag == pvm.TagExit {
				cs.onExit(env, m.From, &stats)
				continue
			}
			if m.Tag == TagRespawnAck {
				cs.onAck(env, m.Data.(respawnAckMsg))
				continue
			}
			if m.Tag == TagStop {
				cs.shutdown(env, &stats)
				env.Send(master, TagStats, stats)
				return
			}
			gm := m.Data.(globalMsg)
			if err := prob.Restore(gm.Perm); err != nil {
				panic(fmt.Sprintf("core: tsw %s: %v", env.Name(), err))
			}
			if gm.Rebalance {
				divLo, divHi = gm.RangeLo, gm.RangeHi
			}
			env.Work(staWork)
			// Adopt the winner's tabu list with the solution.
			list.Reset()
			list.Import(gm.Tabu, iter)
			noteBest()
			break
		}
	}
}

// buildCheckpoint captures the TSW's recovery state: search memory,
// counters, the CLW attachment table, and a fresh seed for the
// successor's random stream. Everything is copied — the checkpoint
// must stay valid after the TSW keeps mutating its buffers.
func buildCheckpoint(widx int, prob State, list *tabu.List, freq *tabu.Frequency,
	r *rand.Rand, iter int64, stats WorkerStats, best float64, bestPerm []int32,
	divLo, divHi int32, reports, acceptedRefresh int, cs *clwSet) tswCheckpoint {
	return tswCheckpoint{
		WorkerIdx:       widx,
		Iter:            iter,
		Best:            best,
		BestPerm:        append([]int32(nil), bestPerm...),
		Perm:            prob.Snapshot(),
		Tabu:            list.Export(iter),
		Freq:            freq.Export(),
		RandSeed:        r.Uint64(),
		Stats:           stats,
		DivLo:           divLo,
		DivHi:           divHi,
		Reports:         reports,
		AcceptedRefresh: acceptedRefresh,
		CLWs:            cs.slots(),
	}
}

// selfReseed is the durable TSW's half of the checkpoint contract:
// after publishing a checkpoint it continues from the very seed it
// published, so the stream a successor restores with rng.New(RandSeed)
// is the stream this TSW carries forward — resumed and uninterrupted
// runs draw identical numbers from here on.
func selfReseed(seed uint64) *rand.Rand { return rng.New(seed) }

// clwSet is a TSW's view of its candidate-list workers: identity,
// liveness, current element ranges and per-step trial budgets, plus
// (in adaptive mode) the throughput tracker that re-partitions them
// and (with respawn on) the replacements parked for the next barrier.
type clwSet struct {
	cfg     Config
	tune    Tuning
	n       int32
	widx    int
	master  pvm.TaskID
	respawn bool
	ids     []pvm.TaskID
	byID    map[pvm.TaskID]int
	rng     [][2]int32
	live    []bool
	alive   int
	pend    map[int]pvm.TaskID // CLW index -> spawned-but-unseeded replacement
	track   *sched.Tracker     // nil in static mode
}

// newCLWSet spawns the TSW's CLWs and initializes them. Element ranges
// are the static equal split by default, or speed-proportional shares
// (seeded from the declared machine speeds) in adaptive mode. CLWs
// whose range is empty — more workers than elements — are not spawned
// at all.
func newCLWSet(env pvm.Env, problem Problem, cfg Config, tune Tuning, init initMsg, n int32, master pvm.TaskID) *clwSet {
	cs := &clwSet{
		cfg:     cfg,
		tune:    tune,
		n:       n,
		widx:    init.WorkerIdx,
		master:  master,
		respawn: cfg.respawn(),
		ids:     make([]pvm.TaskID, cfg.CLWs),
		byID:    make(map[pvm.TaskID]int, cfg.CLWs),
		live:    make([]bool, cfg.CLWs),
		pend:    make(map[int]pvm.TaskID),
	}
	cs.rng = ranges(n, cfg.CLWs)
	if cfg.Adaptive {
		cs.track = seededTracker(env, n, cfg.CLWs, func(j int) int {
			return cfg.clwMachine(init.WorkerIdx, j)
		})
		cs.rng = cs.track.Partition()
	}

	for j := 0; j < cfg.CLWs; j++ {
		if cs.rng[j][1] <= cs.rng[j][0] {
			continue // empty range: nothing for this worker to search
		}
		cs.live[j] = true
		cs.alive++
		cs.ids[j] = env.SpawnSpec(fmt.Sprintf("clw%d", j), cfg.clwMachine(init.WorkerIdx, j), pvm.Spec{
			Kind: taskKindCLW,
			Data: clwSpec{Tune: tune},
			Fn: func(e pvm.Env) {
				clwRun(e, problem, cfg, tune)
			},
		})
		cs.byID[cs.ids[j]] = j
	}
	for j, id := range cs.ids {
		if !cs.live[j] {
			continue
		}
		// Adaptive loss tolerance: watch each CLW so a lost hosting
		// process degrades the search instead of aborting the run. In
		// static mode no watch is registered and a loss aborts, the
		// pre-adaptive behavior.
		if cfg.Adaptive {
			pvm.NotifyExit(env, id)
		}
		env.Send(id, TagInit, initMsg{
			Perm:      init.Perm,
			RangeLo:   cs.rng[j][0],
			RangeHi:   cs.rng[j][1],
			WorkerIdx: j,
			Trials:    cs.trialsFor(j),
		})
	}
	return cs
}

// adoptCLWSet rebuilds a resumed TSW's worker set from a checkpoint:
// surviving CLWs are re-parented with a fresh TagInit carrying the
// checkpointed solution and their recorded range, their exit watches
// are re-armed (the transport answers immediately for workers that
// died in the unwatched gap, so none is silently stuck dead), and
// replacements the master spawned whose acks died with the
// predecessor (ck.Extra) are re-adopted as pending.
func adoptCLWSet(env pvm.Env, cfg Config, tune Tuning, ck *tswCheckpoint, master pvm.TaskID) *clwSet {
	cs := &clwSet{
		cfg:     cfg,
		tune:    tune,
		n:       int32(len(ck.Perm)),
		widx:    ck.WorkerIdx,
		master:  master,
		respawn: cfg.respawn(),
		ids:     make([]pvm.TaskID, cfg.CLWs),
		byID:    make(map[pvm.TaskID]int, cfg.CLWs),
		live:    make([]bool, cfg.CLWs),
		pend:    make(map[int]pvm.TaskID),
		rng:     make([][2]int32, cfg.CLWs),
	}
	cs.track = seededTracker(env, cs.n, cfg.CLWs, func(j int) int {
		return cfg.clwMachine(ck.WorkerIdx, j)
	})
	for j := range cs.rng {
		cs.rng[j] = [2]int32{cs.n, cs.n} // empty until the slot attaches
	}
	for j, s := range ck.CLWs {
		if j >= cfg.CLWs {
			break
		}
		cs.rng[j] = [2]int32{s.RangeLo, s.RangeHi}
		switch s.State {
		case clwSlotLive:
			cs.ids[j] = s.ID
			cs.byID[s.ID] = j
			cs.live[j] = true
			cs.alive++
			pvm.NotifyExit(env, s.ID)
			env.Send(s.ID, TagInit, initMsg{
				Perm:      ck.Perm,
				RangeLo:   s.RangeLo,
				RangeHi:   s.RangeHi,
				WorkerIdx: j,
				Trials:    s.Trials,
			})
		case clwSlotPending:
			cs.pend[j] = s.ID
			cs.byID[s.ID] = j
			pvm.NotifyExit(env, s.ID)
		case clwSlotDead:
			cs.track.Kill(j)
			if cs.respawn {
				// The predecessor's respawn request (or its ack) may have
				// died with it; ask again. A duplicate replacement is
				// retired unseeded by onAck.
				env.Send(master, TagRespawn, respawnMsg{CLWIdx: j, Tune: tune})
			}
		}
	}
	for j := len(ck.CLWs); j < cfg.CLWs; j++ {
		cs.track.Kill(j) // never-spawned slots (empty initial range)
	}
	// Replacements in flight at checkpoint time: adopt like a fresh ack.
	for _, e := range ck.Extra {
		cs.onAck(env, respawnAckMsg{CLWIdx: e.CLWIdx, ID: e.ID})
	}
	return cs
}

// seededTracker builds the adaptive throughput tracker shared by both
// scheduler halves (the master over its TSWs, each TSW over its CLWs):
// k workers over [0, n), weights seeded from the declared speed of the
// machine each worker is placed on, and workers beyond the element
// count dead from the start — matching the empty-range spawn guard.
func seededTracker(env pvm.Env, n int32, k int, machineOf func(int) int) *sched.Tracker {
	seeds := make([]float64, k)
	for i := range seeds {
		seeds[i] = pvm.MachineSpeedOf(env, machineOf(i))
	}
	t := sched.NewTracker(n, seeds)
	for i := int(n); i < k; i++ {
		t.Kill(i)
	}
	return t
}

// trialsFor returns CLW j's per-step trial budget: the tuned constant
// in static mode, or a budget proportional to its range share in
// adaptive mode (total budget conserved at Trials×CLWs per step, every
// live worker guaranteed at least one trial). Integer arithmetic keeps
// the result bit-deterministic.
func (cs *clwSet) trialsFor(j int) int {
	if cs.track == nil {
		return 0 // initMsg semantics: keep the tuned default
	}
	lo, hi := cs.rng[j][0], cs.rng[j][1]
	if hi <= lo || cs.n <= 0 {
		return 1
	}
	t := int((int64(cs.tune.Trials)*int64(cs.cfg.CLWs)*int64(hi-lo) + int64(cs.n)/2) / int64(cs.n))
	if t < 1 {
		t = 1
	}
	return t
}

// slots serializes the attachment table for a checkpoint.
func (cs *clwSet) slots() []clwSlot {
	out := make([]clwSlot, len(cs.ids))
	for j := range cs.ids {
		s := clwSlot{RangeLo: cs.rng[j][0], RangeHi: cs.rng[j][1], Trials: cs.trialsFor(j)}
		switch {
		case cs.live[j]:
			s.State, s.ID = clwSlotLive, cs.ids[j]
		default:
			if id, ok := cs.pend[j]; ok {
				s.State, s.ID = clwSlotPending, id
			} else {
				s.State = clwSlotDead
			}
		}
		out[j] = s
	}
	return out
}

// rebalance re-partitions the live CLWs' ranges by observed throughput
// and ships the updates; it reports whether a new partition was
// adopted. Static mode never rebalances. Revived-but-unattached slots
// (revivePending ran, attach has not) receive their range via the
// TagInit that attach sends, not a TagRebalance.
func (cs *clwSet) rebalance(env pvm.Env) bool {
	if cs.track == nil || cs.track.Alive() == 0 {
		return false
	}
	next, changed := cs.track.Rebalance(cs.rng, 0)
	if !changed {
		return false
	}
	cs.rng = next
	for j, id := range cs.ids {
		if !cs.live[j] {
			continue
		}
		env.Send(id, TagRebalance, rebalanceMsg{
			RangeLo: next[j][0],
			RangeHi: next[j][1],
			Trials:  cs.trialsFor(j),
		})
	}
	return true
}

// observe feeds one CLW report into the throughput tracker.
func (cs *clwSet) observe(from pvm.TaskID, c candMsg) {
	if cs.track == nil {
		return
	}
	if j, ok := cs.byID[from]; ok && cs.live[j] && cs.ids[j] == from {
		cs.track.Observe(j, float64(c.CumTrials), c.At)
	}
}

// onExit writes off a CLW whose hosting process died: it stops being
// scheduled, its range folds into the survivors at the next resync
// barrier, the loss is counted, and — with respawn enabled — a
// replacement is requested from the master (which also covers a
// pending replacement dying before it was ever seeded).
func (cs *clwSet) onExit(env pvm.Env, from pvm.TaskID, stats *WorkerStats) {
	j, ok := cs.byID[from]
	if !ok {
		return
	}
	delete(cs.byID, from)
	switch {
	case cs.live[j] && cs.ids[j] == from:
		cs.live[j] = false
		cs.alive--
		stats.WorkersLost++
		if cs.track != nil {
			cs.track.Kill(j)
		}
		cs.requestRespawn(env, j)
	case cs.pend[j] == from:
		delete(cs.pend, j)
		stats.WorkersLost++
		cs.requestRespawn(env, j)
	}
}

// requestRespawn asks the master for a replacement for CLW slot j.
func (cs *clwSet) requestRespawn(env pvm.Env, j int) {
	if !cs.respawn {
		return
	}
	env.Send(cs.master, TagRespawn, respawnMsg{CLWIdx: j, Tune: cs.tune})
}

// onAck adopts a replacement the master spawned: it is parked as
// pending (watched, but unscheduled and unseeded) until the next
// resync barrier attaches it. A surplus replacement — the slot is
// already live or already has a pending one — is retired unseeded
// with an immediate TagStop. A negative ID is the master declining
// (the run is shutting down).
func (cs *clwSet) onAck(env pvm.Env, a respawnAckMsg) {
	j := a.CLWIdx
	if a.ID < 0 || j < 0 || j >= len(cs.ids) {
		return
	}
	if _, dup := cs.pend[j]; dup || cs.live[j] {
		env.Send(a.ID, TagStop, nil)
		return
	}
	cs.pend[j] = a.ID
	cs.byID[a.ID] = j
	pvm.NotifyExit(env, a.ID)
}

// revivePending is the first half of barrier attachment: every parked
// replacement re-enters the throughput tracker (at the mean live
// weight — its new host's speed is the master's placement choice, not
// ours to know), so the following rebalance carves it a range. The
// slots stay un-live until attach so the rebalance ships no
// TagRebalance to a worker that has not been seeded yet.
func (cs *clwSet) revivePending() []int {
	if len(cs.pend) == 0 {
		return nil
	}
	newly := make([]int, 0, len(cs.pend))
	for j := range cs.pend {
		newly = append(newly, j)
	}
	sort.Ints(newly)
	if cs.track != nil {
		mean := cs.track.MeanAliveWeight()
		for _, j := range newly {
			cs.track.Revive(j, mean)
		}
	}
	return newly
}

// attach is the second half: the revived slots go live and each
// replacement is seeded with a TagInit carrying the current solution,
// its range from the just-adopted partition, and its budget — after
// which it participates in the round like any other CLW. In durable
// runs the TagInit also carries the slot's barrier reseed (the
// replacement attaches after the barrier's TagNewState went out, so
// this is where it receives the draw its slot was dealt).
func (cs *clwSet) attach(env pvm.Env, newly []int, perm []int32, reseeds []uint64) {
	for _, j := range newly {
		id := cs.pend[j]
		delete(cs.pend, j)
		cs.ids[j] = id
		cs.live[j] = true
		cs.alive++
		im := initMsg{
			Perm:      perm,
			RangeLo:   cs.rng[j][0],
			RangeHi:   cs.rng[j][1],
			WorkerIdx: j,
			Trials:    cs.trialsFor(j),
		}
		if reseeds != nil {
			im.Reseed, im.HasReseed = reseeds[j], true
		}
		env.Send(id, TagInit, im)
	}
}

// shutdown stops every surviving CLW and folds its stats into the
// TSW's; CLWs dying during the handshake are written off like any
// other loss. Pending replacements are retired unseeded (they exit
// without a stats report), and replacement acks arriving during the
// handshake retire their worker the same way.
func (cs *clwSet) shutdown(env pvm.Env, stats *WorkerStats) {
	cs.respawn = false // losses from here on are not worth replacing
	for j, id := range cs.ids {
		if cs.live[j] {
			env.Send(id, TagStop, nil)
		}
	}
	for _, id := range cs.pend {
		env.Send(id, TagStop, nil)
	}
	cs.pend = make(map[int]pvm.TaskID)
	expected := cs.alive
	for expected > 0 {
		m := env.Recv(TagStats, pvm.TagExit, TagRespawnAck)
		if m.Tag == pvm.TagExit {
			was := cs.alive
			cs.onExit(env, m.From, stats)
			expected -= was - cs.alive
			continue
		}
		if m.Tag == TagRespawnAck {
			if a := m.Data.(respawnAckMsg); a.ID >= 0 {
				env.Send(a.ID, TagStop, nil)
			}
			continue
		}
		// Retire the sender on receipt: its hosting process dying *after*
		// the stats handshake must not decrement expectations a second
		// time (the late TagExit then finds the worker already retired).
		if j, ok := cs.byID[m.From]; ok && cs.live[j] {
			cs.live[j] = false
			cs.alive--
			delete(cs.byID, m.From)
		}
		stats.add(m.Data.(WorkerStats))
		expected--
	}
}

// candCollector gathers one candidate per live CLW each local
// iteration. Its buffers (the output slice and the reported set) are
// allocated once per TSW and reused for every iteration of the run.
type candCollector struct {
	cs       *clwSet
	out      []candMsg
	reported map[pvm.TaskID]bool
}

func newCandCollector(cs *clwSet) *candCollector {
	return &candCollector{
		cs:       cs,
		out:      make([]candMsg, 0, len(cs.ids)),
		reported: make(map[pvm.TaskID]bool, len(cs.ids)),
	}
}

// collect returns one candidate per live CLW; the returned slice is
// valid until the next collect. In half-sync mode it waits for half of
// them, forces the rest with TagReportNow, then waits for the
// remainder (they arrive promptly, truncated). A CLW dying mid-collect
// is written off and no longer awaited.
func (cc *candCollector) collect(env pvm.Env, halfSync bool, stats *WorkerStats) []candMsg {
	cs := cc.cs
	expected := cs.alive
	cc.out = cc.out[:0]
	for id := range cc.reported {
		delete(cc.reported, id)
	}
	take := func() {
		m := env.Recv(TagCandidate, pvm.TagExit)
		if m.Tag == pvm.TagExit {
			if j, ok := cs.byID[m.From]; ok && cs.live[j] && cs.ids[j] == m.From && !cc.reported[m.From] {
				expected--
			}
			cs.onExit(env, m.From, stats)
			return
		}
		cc.reported[m.From] = true
		c := m.Data.(candMsg)
		cs.observe(m.From, c)
		cc.out = append(cc.out, c)
	}
	if halfSync && expected > 1 {
		half := (expected + 1) / 2
		for len(cc.out) < half && len(cc.out) < expected {
			take()
		}
		for j, id := range cs.ids {
			if cs.live[j] && !cc.reported[id] {
				env.Send(id, TagReportNow, nil)
			}
		}
	}
	for len(cc.out) < expected {
		take()
	}
	return cc.out
}

// diversify performs the Kelly-style diversification "within the TSW
// range" (paper §4.1): each of DiversifyDepth forced swaps moves the
// least-frequently moved element of [lo, hi) — the long-term-memory
// forcing of Kelly et al. [10] — to the best of Trials candidate
// partners from the same range. The move is applied regardless of sign,
// so each TSW drifts into its own region of the solution space, but the
// greedy partner choice bounds the damage to the incumbent. The applied
// attributes become tabu so the jump is not immediately undone.
func diversify(prob tabu.Problem, env pvm.Env, r *rand.Rand, freq *tabu.Frequency, list *tabu.List,
	iter int64, cfg Config, tune Tuning, lo, hi int32) {
	size := prob.Size()
	if hi <= lo+1 || size < 2 {
		return
	}
	for i := 0; i < tune.DiversifyDepth; i++ {
		a := freq.LeastMoved(r, lo, hi)
		bestB, bestDelta := int32(-1), 0.0
		for t := 0; t < tune.Trials; t++ {
			b := lo + int32(r.Intn(int(hi-lo)))
			if b == a {
				continue
			}
			d := prob.DeltaSwap(a, b)
			if bestB < 0 || d < bestDelta {
				bestB, bestDelta = b, d
			}
		}
		env.Work(float64(tune.Trials) * cfg.WorkPerTrial)
		if bestB < 0 {
			continue
		}
		prob.ApplySwap(a, bestB)
		freq.BumpSwap(a, bestB)
		list.Add(tabu.Attr(a, bestB), iter+int64(tune.Tenure))
	}
}
