package pts

import (
	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/pvm"
)

// Option configures one Solve call. Options apply in order over the
// paper's default parameter set (the experiments' configuration); an
// unset knob keeps its default.
type Option func(*settings)

// settings is the resolved configuration of one run.
type settings struct {
	cfg  core.Config
	clus cluster.Cluster
	mode core.Mode
	// modeSet records an explicit WithVirtualTime/WithRealTime, so the
	// distributed options can tell "default virtual" (silently upgraded
	// to real) from "requested virtual" (a configuration error).
	modeSet bool

	// checkpointSet records an explicit WithCheckpointEvery, so Solve
	// can refuse the contradictory WithCheckpointEvery(0)+WithStore
	// combination up front instead of running without resume points.
	checkpointSet bool

	// Distributed execution (net.go options).
	transport pvm.Transport
	listen    *listenConfig
	join      string
	node      nodeConfig
}

// defaultSettings returns the zero-option configuration: the paper's
// default search parameters on the loaded 12-machine testbed, executed
// on the deterministic virtual runtime.
func defaultSettings() settings {
	return settings{
		cfg:  core.DefaultConfig(),
		clus: cluster.Testbed12(defaultTestbedSeed),
		mode: core.Virtual,
	}
}

// defaultTestbedSeed drives the default cluster's load traces — the
// value the repository's walkthroughs use.
const defaultTestbedSeed = 12

// apply folds options over the defaults.
func apply(opts []Option) settings {
	s := defaultSettings()
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s
}

// WithWorkers sets the two parallelization degrees: tsws tabu search
// workers (multi-search threads), each driving clws candidate-list
// workers (functional decomposition).
func WithWorkers(tsws, clws int) Option {
	return func(s *settings) {
		s.cfg.TSWs = tsws
		s.cfg.CLWs = clws
	}
}

// WithIterations sets the iteration budget: global master
// synchronization rounds times local tabu iterations per worker per
// round.
func WithIterations(global, local int) Option {
	return func(s *settings) {
		s.cfg.GlobalIters = global
		s.cfg.LocalIters = local
	}
}

// WithHalfSync toggles the heterogeneity adaptation: when on, parents
// force stragglers to report as soon as half their children finished
// (the paper's §4.2 collection scheme); when off, every child is
// awaited (the homogeneous baseline).
func WithHalfSync(on bool) Option {
	return func(s *settings) { s.cfg.HalfSync = on }
}

// WithAdaptive toggles the heterogeneity-aware adaptive scheduler.
//
// When on, the element space is partitioned over workers
// proportionally to the machines' declared speeds (so the first round
// is already skewed toward fast nodes), then re-partitioned at every
// synchronization barrier to track each worker's observed throughput —
// with each candidate-list worker's per-step trial budget scaled to
// its range share, faster machines do proportionally more of the work
// and rounds finish together instead of waiting on the slowest node.
// Adaptive distributed runs also degrade gracefully: a worker process
// lost mid-run has its element range folded back into the survivors
// and the run completes (where a static run would return
// Result.Interrupted), and worker processes joining late are absorbed
// as spare capacity.
//
// Off (the default), partitioning is the paper's fixed equal split and
// fixed-seed virtual-time results are bit-identical to earlier
// releases. Adaptive virtual-time runs are still deterministic in
// WithSeed — scheduling decisions key off modeled time, not the wall
// clock — but explore a different (speed-weighted) trajectory.
func WithAdaptive(on bool) Option {
	return func(s *settings) { s.cfg.Adaptive = on }
}

// WithRespawn toggles worker recovery in adaptive runs (on by
// default).
//
// With recovery on, a candidate-list worker lost with its hosting
// process is not merely folded into the survivors: the owning TSW
// requests a replacement from the master, which spawns it onto live
// capacity — absorbed elastic spare slots first, else the least-loaded
// surviving node — and the TSW re-seeds it from its current solution
// at the next synchronization barrier, restoring the lost parallelism.
// Each TSW also piggybacks a recovery checkpoint (incumbent solution,
// tabu memory, iteration counters, random-stream seed, CLW attachment
// table) on its periodic reports, so a lost TSW is resurrected from
// its last checkpoint with its surviving CLWs re-attached — no single
// worker process is fatal. Result.Stats counts both sides as
// WorkersLost and WorkersRespawned.
//
// WithRespawn(false) restores the fold-only degradation: CLW losses
// shrink the search and a TSW loss aborts the run (best-so-far with
// Result.Interrupted). Without WithAdaptive neither mode applies —
// static runs abort on any loss, the paper's behavior.
func WithRespawn(on bool) Option {
	return func(s *settings) { s.cfg.DisableRespawn = !on }
}

// WithCheckpointEvery sets how many reports a TSW lets pass between
// piggybacked recovery checkpoints: 1 (the default) checkpoints on
// every report; larger values shrink report payloads at the price of
// resurrecting a lost TSW from a staler state. An explicit 0 keeps
// the default cadence in runs that checkpoint (respawn or store) and
// is a no-op otherwise — except combined with WithStore, where asking
// for no checkpoints contradicts the store's resume contract and
// Solve refuses the configuration up front.
//
// Meaningful in adaptive runs with respawn enabled and in durable
// (WithStore) runs; other runs carry no checkpoints at all. Note that
// a WithStore run resumed from its snapshot is bit-equal to the
// uninterrupted run only at the default cadence of 1 — a sparser
// cadence still resumes correctly, from the staler checkpointed
// state.
func WithCheckpointEvery(reports int) Option {
	return func(s *settings) {
		s.cfg.CheckpointEvery = reports
		s.checkpointSet = true
	}
}

// WithStore makes the run crash-only durable: the master persists a
// run snapshot (round index, incumbent best, every TSW's latest
// checkpoint) to st at each synchronization barrier, and a later
// Solve with the same store, problem, seed and parameters finds the
// snapshot and resumes the run where it stopped — the snapshot is
// deleted only on clean completion. A fixed-seed virtual-time run
// resumed this way finishes bit-identical to the same store-enabled
// run left uninterrupted (static workers, full sync, checkpoint
// cadence 1). Snapshots live under "runs/run" in the store, so one
// store tracks one run at a time; the serving daemon namespaces per
// job instead.
//
// WithStore implies checkpointing but is independent of WithRespawn:
// respawn recovers worker losses within a live run, the store
// recovers the master process itself. A static store-enabled run
// still aborts when a worker process dies — the snapshot is then what
// makes the abort recoverable by the next Solve.
//
// Without a store, runs are bit-identical to earlier releases; the
// durability machinery stays out of every message. A nil st is a
// no-op.
func WithStore(st Store) Option {
	return func(s *settings) { s.cfg.Store = st }
}

// WithCluster selects the machines the run executes on.
func WithCluster(c Cluster) Option {
	return func(s *settings) { s.clus = c.c }
}

// WithSeed fixes the run seed: the initial solution and every worker's
// sampling derive from it, so virtual-time runs are bit-reproducible.
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.cfg.Seed = seed }
}

// WithVirtualTime runs on the deterministic discrete-event runtime:
// compute and messages cost modeled time on the configured cluster, and
// results are bit-identical across hosts and runs. It is single-process
// by construction and cannot combine with a distributed transport.
func WithVirtualTime() Option {
	return func(s *settings) { s.mode, s.modeSet = core.Virtual, true }
}

// WithRealTime runs with wall-clock timing — the same algorithm code
// executing genuinely in parallel, on in-process goroutines by default
// or across OS processes with WithListen/WithTransport. The modeled
// per-trial work charge does not apply unless WithWorkScale asks for
// speed emulation, and results are not deterministic in time (with
// half-sync off, the search outcome still is).
func WithRealTime() Option {
	return func(s *settings) { s.mode, s.modeSet = core.Real, true }
}

// WithProgress streams one Snapshot per completed global iteration to
// fn, delivered by the master as soon as the round's reports are
// collected. fn runs on the run's own thread of execution: keep it
// fast, and do not call back into the solver from it. Cancelling the
// run's context from fn is the supported way to stop early based on
// observed progress.
func WithProgress(fn func(Snapshot)) Option {
	return func(s *settings) {
		if fn == nil {
			s.cfg.Progress = nil
			return
		}
		s.cfg.Progress = func(cs core.Snapshot) { fn(newSnapshot(cs)) }
	}
}

// WithTrace toggles recording of the best-cost-versus-time curve in
// Result.Trace (on by default). Turn it off for long runs where the
// per-improvement points are not needed; WithProgress covers the
// per-round granularity either way.
func WithTrace(on bool) Option {
	return func(s *settings) { s.cfg.RecordTrace = on }
}

// WithTabu sets the core tabu search parameters: tenure (iterations an
// attribute stays tabu), trials (candidate pairs per compound-move
// step, the paper's m) and depth (maximum swaps per compound move, the
// paper's d).
func WithTabu(tenure, trials, depth int) Option {
	return func(s *settings) {
		s.cfg.Tenure = tenure
		s.cfg.Trials = trials
		s.cfg.Depth = depth
	}
}

// WithDiversification sets the number of forced Kelly-style
// diversification swaps each worker performs at every global iteration;
// 0 disables diversification.
func WithDiversification(depth int) Option {
	return func(s *settings) { s.cfg.DiversifyDepth = depth }
}

// WithRelaxedAccumulation opts batch trial evaluation into the relaxed
// (reassociated) accumulation kernels: weighted-delta sums accumulate
// in independent lanes and the fuzzy-cost fold multiplies by hoisted
// reciprocals instead of dividing, which is measurably faster but may
// differ from the strict path in final-ulp rounding.
//
// Off (the default), batch evaluation is bit-for-bit identical to
// scalar evaluation and fixed-seed runs reproduce the strict goldens.
// On, fixed-seed runs are still exactly reproducible — the relaxed
// kernels are deterministic, and the flag travels in the job payload so
// every worker of a distributed run scores identically — they just pin
// a different (relaxed-mode) golden trajectory. Problems without a
// relaxed kernel (e.g. QAP) are unaffected.
func WithRelaxedAccumulation(on bool) Option {
	return func(s *settings) { s.cfg.RelaxedAccumulation = on }
}

// WithEvaluationPool sizes the per-CLW evaluation pool: each
// candidate-list worker shards its trial batches across `workers`
// persistent goroutines, overlapping the evaluation of independent
// candidates on multi-core nodes. Requires WithRelaxedAccumulation —
// strict mode keeps the single-threaded batch path its bit-identity
// contract is audited against, and Solve rejects the combination.
// 0 or 1 (the default) disables the pool.
func WithEvaluationPool(workers int) Option {
	return func(s *settings) { s.cfg.EvalWorkers = workers }
}
