package pts

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"pts/internal/core"
)

// quickOpts returns a small, fast configuration for API tests.
func quickOpts() []Option {
	return []Option{
		WithWorkers(3, 2),
		WithIterations(4, 12),
		WithTabu(10, 6, 3),
		WithSeed(7),
		WithCluster(Homogeneous(12, 1)),
	}
}

func placementProblem(t *testing.T) *PlacementProblem {
	t.Helper()
	p, err := PlacementBenchmark("highway")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptionDefaultsMatchCore(t *testing.T) {
	// The zero-option configuration must be exactly the engine's
	// defaults (the paper's parameter set): the facade adds no silent
	// parameter drift.
	got := apply(nil)
	if !reflect.DeepEqual(got.cfg, core.DefaultConfig()) {
		t.Errorf("zero-option config diverges from core defaults:\n got %+v\nwant %+v",
			got.cfg, core.DefaultConfig())
	}
	if got.mode != core.Virtual {
		t.Errorf("default mode = %v, want Virtual", got.mode)
	}
	if len(got.clus.Machines) != 12 {
		t.Errorf("default cluster has %d machines, want the 12-machine testbed", len(got.clus.Machines))
	}
}

func TestSolvePlacementImproves(t *testing.T) {
	res, err := Solve(context.Background(), placementProblem(t), quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Problem != "highway" {
		t.Errorf("problem = %q", res.Problem)
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("no improvement: %v -> %v", res.InitialCost, res.BestCost)
	}
	if res.Rounds != 4 || res.Interrupted {
		t.Errorf("rounds = %d, interrupted = %v", res.Rounds, res.Interrupted)
	}
	d, ok := res.Details.(PlacementDetails)
	if !ok {
		t.Fatalf("details = %T, want PlacementDetails", res.Details)
	}
	if d.Wirelength <= 0 || d.Area <= 0 || d.CriticalPath <= 0 {
		t.Errorf("degenerate details: %+v", d)
	}
	if len(res.Trace) == 0 || res.Trace[0].Cost != res.InitialCost {
		t.Error("trace missing or does not start at the initial cost")
	}
	if res.Tasks == 0 || res.Messages == 0 {
		t.Errorf("runtime counters empty: %d tasks, %d messages", res.Tasks, res.Messages)
	}
}

func TestSolveQAPSameAPI(t *testing.T) {
	// The QAP must run through the identical Solve path, options and
	// result shape as placement — the problem boundary is generic.
	q := RandomQAP(40, 3)
	res, err := Solve(context.Background(), q, quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost >= res.InitialCost {
		t.Fatalf("no improvement: %v -> %v", res.InitialCost, res.BestCost)
	}
	d, ok := res.Details.(QAPDetails)
	if !ok {
		t.Fatalf("details = %T, want QAPDetails", res.Details)
	}
	// The engine's incremental cost must agree with the from-scratch
	// recomputation.
	if diff := res.BestCost - d.Cost; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("incremental best %v != exact %v", res.BestCost, d.Cost)
	}
}

func TestSolveDeterministicVirtual(t *testing.T) {
	p := placementProblem(t)
	a, err := Solve(context.Background(), p, quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), p, quickOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Elapsed != b.Elapsed {
		t.Fatalf("virtual runs diverged: (%v,%v) vs (%v,%v)",
			a.BestCost, a.Elapsed, b.BestCost, b.Elapsed)
	}
}

func TestProgressFiresOncePerGlobalIteration(t *testing.T) {
	var snaps []Snapshot
	res, err := Solve(context.Background(), placementProblem(t),
		append(quickOpts(), WithProgress(func(s Snapshot) { snaps = append(snaps, s) }))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != res.Rounds {
		t.Fatalf("progress fired %d times for %d rounds", len(snaps), res.Rounds)
	}
	for i, s := range snaps {
		if s.Round != i+1 || s.Rounds != 4 {
			t.Errorf("snapshot %d has round %d/%d", i, s.Round, s.Rounds)
		}
		if s.Reports != 3 {
			t.Errorf("snapshot %d collected %d reports, want 3", i, s.Reports)
		}
		if i > 0 && (s.BestCost > snaps[i-1].BestCost || s.Elapsed < snaps[i-1].Elapsed) {
			t.Errorf("snapshot %d not monotone: %+v after %+v", i, s, snaps[i-1])
		}
	}
	last := snaps[len(snaps)-1]
	if last.BestCost != res.BestCost {
		t.Errorf("final snapshot best %v != result best %v", last.BestCost, res.BestCost)
	}
	if last.Stats.LocalIters == 0 {
		t.Error("final snapshot carries no worker stats")
	}
}

func TestCancelledContextReturnsBestSoFarVirtual(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var atCancel float64
	res, err := Solve(ctx, placementProblem(t),
		append(quickOpts(),
			WithIterations(50, 12),
			WithProgress(func(s Snapshot) {
				if s.Round == 3 {
					atCancel = s.BestCost
					cancel()
				}
			}))...)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("result not marked interrupted")
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (cancelled during round 3's snapshot)", res.Rounds)
	}
	if res.BestCost > atCancel {
		t.Errorf("best %v worse than best at cancellation %v", res.BestCost, atCancel)
	}
	if res.BestCost >= res.InitialCost {
		t.Error("best-so-far not better than initial after 3 rounds")
	}
	if _, ok := res.Details.(PlacementDetails); !ok {
		t.Error("interrupted result lacks details")
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Option{WithVirtualTime(), WithRealTime()} {
		res, err := Solve(ctx, placementProblem(t), append(quickOpts(), mode)...)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Interrupted || res.Rounds != 0 {
			t.Errorf("pre-cancelled run: interrupted=%v rounds=%d", res.Interrupted, res.Rounds)
		}
		if res.BestCost != res.InitialCost {
			t.Errorf("pre-cancelled best %v != initial %v", res.BestCost, res.InitialCost)
		}
	}
}

// goroutines polls until the goroutine count drops to at most want,
// tolerating runtime bookkeeping that unwinds asynchronously.
func goroutines(want int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestCancelRealModeNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Solve(ctx, placementProblem(t),
		WithRealTime(), WithWorkers(3, 2), WithIterations(10000, 10000), WithSeed(7),
		WithCluster(Homogeneous(12, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("cancelled real run took %v, not prompt", wall)
	}
	if !res.Interrupted {
		t.Error("real-mode run not marked interrupted")
	}
	if res.BestCost > res.InitialCost {
		t.Errorf("best %v worse than initial %v", res.BestCost, res.InitialCost)
	}
	if after := goroutines(before); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

func TestCancelVirtualModeNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Solve(ctx, placementProblem(t),
		append(quickOpts(),
			WithIterations(100, 12),
			WithProgress(func(s Snapshot) {
				if s.Round == 2 {
					cancel()
				}
			}))...)
	if err != nil {
		t.Fatal(err)
	}
	if after := goroutines(before); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

func TestSolverBaseOptionsCompose(t *testing.T) {
	s := NewSolver(quickOpts()...)
	// Per-call options apply after the base: the iteration override must
	// win, everything else stays from the base.
	res, err := s.Solve(context.Background(), placementProblem(t), WithIterations(2, 12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want per-call override 2", res.Rounds)
	}
}

func TestModeOptionsCompose(t *testing.T) {
	// WithRealTime followed by WithVirtualTime must yield a genuine
	// virtual-time run: the modeled work charge stays intact, so
	// elapsed reflects compute, not just message latency.
	var s settings
	s = apply([]Option{WithRealTime(), WithVirtualTime()})
	if s.mode != core.Virtual {
		t.Fatalf("mode = %v, want Virtual", s.mode)
	}
	if want := core.DefaultConfig().WorkPerTrial; s.cfg.WorkPerTrial != want {
		t.Errorf("WorkPerTrial = %v after mode round-trip, want %v", s.cfg.WorkPerTrial, want)
	}
}

func TestSolveValidatesConfig(t *testing.T) {
	if _, err := Solve(context.Background(), placementProblem(t), WithWorkers(0, 1)); err == nil {
		t.Error("invalid worker count accepted")
	}
	if _, err := Solve(context.Background(), placementProblem(t), WithCluster(Cluster{})); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestNewQAPValidates(t *testing.T) {
	if _, err := NewQAP([][]float64{{0}}, [][]float64{{0, 1}, {1, 0}}); err == nil {
		t.Error("mismatched matrices accepted")
	}
	q, err := NewQAP(
		[][]float64{{0, 2, 4}, {2, 0, 6}, {4, 6, 0}},
		[][]float64{{0, 1, 3}, {1, 0, 5}, {3, 5, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 3 {
		t.Errorf("size = %d", q.Size())
	}
}

func TestQAPReachesBruteForceOptimum(t *testing.T) {
	q := RandomQAP(7, 4)
	res, err := Solve(context.Background(), q,
		WithWorkers(2, 2), WithIterations(6, 60), WithSeed(2),
		WithCluster(Homogeneous(6, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if opt := q.BruteForceOptimum(); res.BestCost > opt+1e-9 {
		t.Errorf("parallel search found %v, optimum %v", res.BestCost, opt)
	}
}
