package serve

import (
	"context"
	"testing"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/store"
)

// newStoredScheduler builds a scheduler over st with the runner seam
// installed BEFORE the queue is pumped — recovery enqueues jobs at
// construction, so the production pattern (New, wire, then Notify)
// must hold in tests too or a recovered job races onto the real
// solver.
func newStoredScheduler(t *testing.T, fleet *fakeFleet, st store.Store,
	runJob func(ctx context.Context, j *Job, lease Lease) (*core.Result, error)) *Scheduler {
	t.Helper()
	s, err := New(Config{
		Fleet:      fleet,
		Resolve:    testResolve,
		Cluster:    cluster.Homogeneous(4, 1),
		QueueDepth: 4,
		Store:      st,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fleet.mu.Lock()
	fleet.notify = s.Notify
	fleet.mu.Unlock()
	if runJob != nil {
		s.runJob = runJob
	}
	s.Notify()
	return s
}

// submitStored files one tiny job and returns it.
func submitStored(t *testing.T, s *Scheduler) *Job {
	t.Helper()
	j, err := s.Submit(Request{
		Spec:    core.ProblemSpec{Kind: "placement", Circuit: "highway"},
		Workers: 1,
		Cfg:     tinyCfg(),
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return j
}

// TestSchedulerRestartRecoversJobs is the daemon's crash-only
// contract at the scheduler level: a new scheduler over the old
// scheduler's store re-serves terminal results, re-admits queued and
// mid-run jobs in their original order, and continues the id
// sequence.
func TestSchedulerRestartRecoversJobs(t *testing.T) {
	st := store.NewMem()
	started := make(chan string, 8)
	runner, step := blockingRunner(started)
	sA := newStoredScheduler(t, newFakeFleet(1), st, runner)

	j1 := submitStored(t, sA) // runs, held by the blocking runner
	<-started
	j2 := submitStored(t, sA) // queues behind it
	step()                    // j1 completes
	waitStatus(t, j1, Done)
	<-started // j2 admitted, now held mid-run
	j3 := submitStored(t, sA)
	if got := j3.Status(); got != Queued {
		t.Fatalf("j3 status = %v, want queued", got)
	}

	// Crash: no drain, no cleanup — just a second scheduler over the
	// same store, as a restarted daemon would build.
	started2 := make(chan string, 8)
	runner2, step2 := blockingRunner(started2)
	sB := newStoredScheduler(t, newFakeFleet(1), st, runner2)

	// The done job survives with its result.
	r1, ok := sB.Get(j1.ID())
	if !ok {
		t.Fatalf("restart lost %s", j1.ID())
	}
	if r1.Status() != Done || r1.Result() == nil || r1.Result().Problem != "fake" {
		t.Fatalf("recovered %s = %v result %+v, want done with result", j1.ID(), r1.Status(), r1.Result())
	}
	// The submission's config survives the journal round-trip.
	if cfg := r1.Request().Cfg; cfg.GlobalIters != tinyCfg().GlobalIters || cfg.Seed != tinyCfg().Seed {
		t.Fatalf("recovered config mutated: %+v", cfg)
	}

	// The mid-run job and the queued job re-enter the queue in order:
	// j2 (was running) is re-admitted first, j3 waits behind it.
	if id := <-started2; id != j2.ID() {
		t.Fatalf("first re-admitted job = %s, want %s", id, j2.ID())
	}
	r3, ok := sB.Get(j3.ID())
	if !ok || r3.Status() != Queued {
		t.Fatalf("recovered %s status = %v, want queued", j3.ID(), r3.Status())
	}
	step2()
	waitStatusID(t, sB, j2.ID(), Done)
	if id := <-started2; id != j3.ID() {
		t.Fatalf("second re-admitted job = %s, want %s", id, j3.ID())
	}
	step2()
	waitStatusID(t, sB, j3.ID(), Done)

	// New submissions continue the id sequence past the recovered ones.
	j4 := submitStored(t, sB)
	if j4.ID() == j1.ID() || j4.ID() == j2.ID() || j4.ID() == j3.ID() {
		t.Fatalf("restart reused job id %s", j4.ID())
	}
	if jobSeq(j4.ID()) <= jobSeq(j3.ID()) {
		t.Fatalf("id sequence went backwards: %s after %s", j4.ID(), j3.ID())
	}
	<-started2
	step2()

	// Unblock the abandoned first scheduler so its runner goroutine
	// does not outlive the test deadlocked on the step channel.
	_ = sA.Cancel(j2.ID())
}

// TestSchedulerRestartDropsRejectedJobs: a submission refused with
// queue-full is never journaled, so a restart does not resurrect it.
func TestSchedulerRestartDropsRejectedJobs(t *testing.T) {
	st := store.NewMem()
	started := make(chan string, 8)
	runner, step := blockingRunner(started)
	fleet := newFakeFleet(1)
	sA, err := New(Config{
		Fleet:      fleet,
		Resolve:    testResolve,
		Cluster:    cluster.Homogeneous(4, 1),
		QueueDepth: 1,
		Store:      st,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sA.runJob = runner

	j1 := submitStored(t, sA) // running
	<-started
	j2 := submitStored(t, sA) // fills the depth-1 queue
	if _, err := sA.Submit(Request{
		Spec:    core.ProblemSpec{Kind: "placement", Circuit: "highway"},
		Workers: 1,
		Cfg:     tinyCfg(),
	}); err == nil {
		t.Fatal("overflow submission accepted")
	}

	keys, err := st.List("jobs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("journal holds %d jobs %v, want 2", len(keys), keys)
	}

	sB := newStoredScheduler(t, newFakeFleet(1), st, func(ctx context.Context, j *Job, lease Lease) (*core.Result, error) {
		return &core.Result{Problem: "fake", Rounds: 1}, nil
	})
	if got := len(sB.Jobs()); got != 2 {
		t.Fatalf("restart recovered %d jobs, want 2 (the rejected one must stay gone)", got)
	}
	waitStatusID(t, sB, j1.ID(), Done)
	waitStatusID(t, sB, j2.ID(), Done)

	step()
	_ = sA
}

// TestSchedulerCancelledJobNotResumed: a job cancelled before the
// crash stays cancelled after the restart instead of re-running.
func TestSchedulerCancelledJobNotResumed(t *testing.T) {
	st := store.NewMem()
	started := make(chan string, 8)
	runner, step := blockingRunner(started)
	sA := newStoredScheduler(t, newFakeFleet(1), st, runner)

	j1 := submitStored(t, sA)
	<-started
	j2 := submitStored(t, sA)
	if err := sA.Cancel(j2.ID()); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	waitStatus(t, j2, Cancelled)
	step()
	waitStatus(t, j1, Done)

	sB := newStoredScheduler(t, newFakeFleet(1), st, func(ctx context.Context, j *Job, lease Lease) (*core.Result, error) {
		t.Errorf("recovered scheduler ran %s, which was terminal", j.ID())
		return &core.Result{Problem: "fake"}, nil
	})
	r2, ok := sB.Get(j2.ID())
	if !ok || r2.Status() != Cancelled {
		t.Fatalf("recovered %s = %v, want cancelled", j2.ID(), r2.Status())
	}
	if sB.Queued() != 0 {
		t.Fatalf("restart queued %d jobs, want none", sB.Queued())
	}
}

// waitStatusID polls a job by id until it reaches want.
func waitStatusID(t *testing.T, s *Scheduler, id string, want Status) {
	t.Helper()
	j, ok := s.Get(id)
	if !ok {
		t.Fatalf("no job %s", id)
	}
	waitStatus(t, j, want)
}
