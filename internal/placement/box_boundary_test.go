package placement

import (
	"math"
	"math/rand"
	"testing"

	"pts/internal/netlist"
)

// boundaryNetlist is a small random circuit for the compaction-boundary
// fuzz: enough cells and shared nets that batch merge walks hit the
// two-sided, one-sided and shared-net cases.
func boundaryNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	const gates = 48
	nl := &netlist.Netlist{Name: "boundary"}
	nl.Cells = append(nl.Cells, netlist.Cell{Name: "pi", Width: 2, Kind: netlist.Input})
	for i := 0; i < gates; i++ {
		nl.Cells = append(nl.Cells, netlist.Cell{
			Name:  "g" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Width: 1 + r.Intn(4), Delay: 0.1, Kind: netlist.Gate,
		})
	}
	nl.Cells = append(nl.Cells, netlist.Cell{Name: "po", Width: 2, Kind: netlist.Output})
	// One net per gate, driven by an earlier cell so the circuit stays
	// acyclic, with 1-4 random later sinks (the last net feeds po).
	for i := 0; i < gates; i++ {
		drv := netlist.CellID(r.Intn(i + 1)) // 0 = pi or an earlier gate
		sinks := []netlist.CellID{netlist.CellID(i + 1)}
		for s := r.Intn(4); s > 0; s-- {
			sk := netlist.CellID(i + 1 + r.Intn(gates+1-i))
			dup := sk == drv
			for _, have := range sinks {
				dup = dup || sk == have
			}
			if !dup {
				sinks = append(sinks, sk)
			}
		}
		nl.Nets = append(nl.Nets, netlist.Net{Name: "n", Driver: drv, Sinks: sinks})
	}
	if err := nl.Finish(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestCompactBoundaryBitEqual fuzzes the int16 compaction at its limit:
// a 2 x 32768 layout is the largest grid the compact layout accepts
// (columns span [0, 32767] = MaxInt16, so per-axis extents and deltas
// touch the full int16 range), and every objective the trial kernels
// produce there must be bit-for-bit the int32 fallback's. The wide twin
// is the same placement through the forceWideBoxes test hook, mutated in
// lockstep; strict and relaxed batch modes are both checked (relaxed
// reassociates, but identically in either width).
func TestCompactBoundaryBitEqual(t *testing.T) {
	nl := boundaryNetlist(t)
	l := Layout{Rows: 2, Cols: compactMaxDim}
	p, err := New(nl, l)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Compact() {
		t.Fatalf("2x%d layout not compact; compactFits broken at the boundary", compactMaxDim)
	}
	r := rand.New(rand.NewSource(3))
	p.Randomize(r)
	// Pin cells to the extreme columns so the boundary is provably
	// exercised, not just probable: cell 0 at the first slot of row 0,
	// cell 1 at the last slot of row 1 (column 32767).
	for c, slot := range []int{0, l.Slots() - 1} {
		pos := l.SlotPos(slot)
		if p.slot[slot] == netlist.None {
			if err := p.MoveToSlot(netlist.CellID(c), pos); err != nil {
				t.Fatal(err)
			}
		} else {
			p.SwapCells(netlist.CellID(c), p.slot[slot])
		}
	}
	wide := p.Clone()
	wide.forceWideBoxes()
	if wide.Compact() {
		t.Fatal("forceWideBoxes left the clone compact")
	}

	cells := nl.NumCells()
	w := make([]float64, nl.NumNets())
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	const batch = 16
	cands := make([]SwapCand, batch)
	dLen16 := make([]float64, batch)
	dW16 := make([]float64, batch)
	area16 := make([]float64, batch)
	dLen32 := make([]float64, batch)
	dW32 := make([]float64, batch)
	area32 := make([]float64, batch)

	maxCol := int32(0)
	for round := 0; round < 400; round++ {
		relaxed := round%2 == 1
		p.SetRelaxedAccumulation(relaxed)
		wide.SetRelaxedAccumulation(relaxed)
		for i := range cands {
			cands[i] = SwapCand{
				A: netlist.CellID(r.Intn(cells)),
				B: netlist.CellID(r.Intn(cells)),
			}
		}
		p.SwapObjectivesBatch(cands, w, dLen16, dW16, area16)
		wide.SwapObjectivesBatch(cands, w, dLen32, dW32, area32)
		for i := range cands {
			if math.Float64bits(dLen16[i]) != math.Float64bits(dLen32[i]) ||
				math.Float64bits(dW16[i]) != math.Float64bits(dW32[i]) ||
				math.Float64bits(area16[i]) != math.Float64bits(area32[i]) {
				t.Fatalf("round %d (relaxed=%v) cand %d (%d,%d): compact (%v,%v,%v) != wide (%v,%v,%v)",
					round, relaxed, i, cands[i].A, cands[i].B,
					dLen16[i], dW16[i], area16[i], dLen32[i], dW32[i], area32[i])
			}
		}
		// The scalar kernel too, through the same dispatch seam.
		a, b := cands[0].A, cands[0].B
		sl16, sw16 := p.SwapDeltaWeighted(a, b, w)
		sl32, sw32 := wide.SwapDeltaWeighted(a, b, w)
		if math.Float64bits(sl16) != math.Float64bits(sl32) ||
			math.Float64bits(sw16) != math.Float64bits(sw32) {
			t.Fatalf("round %d scalar (%d,%d): compact (%v,%v) != wide (%v,%v)",
				round, a, b, sl16, sw16, sl32, sw32)
		}
		// Commit a swap on both twins and keep fuzzing from the new state.
		p.SwapCells(a, b)
		wide.SwapCells(a, b)
		if math.Float64bits(p.HPWL()) != math.Float64bits(wide.HPWL()) {
			t.Fatalf("round %d: HPWL diverged after commit: compact %v, wide %v",
				round, p.HPWL(), wide.HPWL())
		}
		for c := 0; c < cells; c++ {
			if col := p.pos[c].Col; col > maxCol {
				maxCol = col
			}
		}
	}
	if maxCol != compactMaxDim-1 {
		t.Fatalf("fuzz never placed a cell at the boundary column %d (max %d)", compactMaxDim-1, maxCol)
	}
}

// TestCompactOverflowFallback pins the overflow guard: one slot past the
// int16 boundary on either axis and New must choose the wide layout on
// its own.
func TestCompactOverflowFallback(t *testing.T) {
	nl := boundaryNetlist(t)
	for _, l := range []Layout{
		{Rows: 2, Cols: compactMaxDim + 1},
		{Rows: compactMaxDim + 1, Cols: 2},
	} {
		p, err := New(nl, l)
		if err != nil {
			t.Fatal(err)
		}
		if p.Compact() {
			t.Errorf("layout %dx%d exceeds int16 coordinates but got the compact store", l.Rows, l.Cols)
		}
	}
	if p, err := New(nl, Layout{Rows: 2, Cols: compactMaxDim}); err != nil {
		t.Fatal(err)
	} else if !p.Compact() {
		t.Error("layout at the boundary should use the compact store")
	}
}
