package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLoadTraceAt(t *testing.T) {
	lt := LoadTrace{Period: 2, Levels: []float64{0.5, 1.0, 0.0}}
	cases := []struct{ t, want float64 }{
		{0, 0.5}, {1.9, 0.5}, {2, 1.0}, {4, 0.0}, {6, 0.5}, {7.5, 0.5}, {8, 1.0},
	}
	for _, c := range cases {
		if got := lt.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if (LoadTrace{}).At(5) != 0 {
		t.Error("zero trace should be idle")
	}
	if ConstantLoad(0.3).At(99) != 0.3 {
		t.Error("ConstantLoad wrong")
	}
	if ConstantLoad(0).At(1) != 0 {
		t.Error("ConstantLoad(0) should be idle")
	}
}

func TestEffectiveSpeed(t *testing.T) {
	m := Machine{Speed: 2.0, Load: ConstantLoad(1.0)}
	if got := m.EffectiveSpeed(0); got != 1.0 {
		t.Errorf("EffectiveSpeed = %v, want 1.0", got)
	}
}

func TestWorkDurationIdle(t *testing.T) {
	m := Machine{Speed: 0.5}
	if got := m.WorkDuration(10, 3); got != 6 {
		t.Errorf("WorkDuration = %v, want 6", got)
	}
	if m.WorkDuration(0, 0) != 0 {
		t.Error("zero work should take zero time")
	}
	if m.WorkDuration(0, -1) != 0 {
		t.Error("negative work should take zero time")
	}
}

func TestWorkDurationPiecewiseByHand(t *testing.T) {
	// Speed 1, period 1: load alternates 0 and 1 -> effective speeds 1
	// then 0.5. Work of 1.5 starting at t=0: segment 1 does 1.0, leaving
	// 0.5 at speed 0.5 -> 1.0 more seconds. Total 2.0.
	m := Machine{Speed: 1, Load: LoadTrace{Period: 1, Levels: []float64{0, 1}}}
	if got := m.WorkDuration(0, 1.5); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("WorkDuration = %v, want 2.0", got)
	}
	// Starting mid-segment: at t=0.5 segment 0 has 0.5s at speed 1.
	// Work 1.0: 0.5 done by t=1, remaining 0.5 at speed 0.5 -> +1s. 1.5 total.
	if got := m.WorkDuration(0.5, 1.0); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("WorkDuration(0.5, 1.0) = %v, want 1.5", got)
	}
}

func TestWorkDurationFastForwardCycles(t *testing.T) {
	m := Machine{Speed: 1, Load: LoadTrace{Period: 0.5, Levels: []float64{0, 1}}}
	// One cycle (1s) does 0.5 + 0.25 = 0.75 work. 75 work = 100 cycles.
	got := m.WorkDuration(0, 75)
	if math.Abs(got-100) > 1e-6 {
		t.Errorf("WorkDuration = %v, want 100", got)
	}
}

// Property: duration is positive, monotone in work, and never better
// than the idle bound work/Speed.
func TestQuickWorkDurationBounds(t *testing.T) {
	f := func(speedRaw, w1Raw, w2Raw uint16, startRaw uint16) bool {
		speed := 0.1 + float64(speedRaw%40)/10
		m := Machine{
			Speed: speed,
			Load:  LoadTrace{Period: 0.3, Levels: []float64{0, 0.5, 1.2, 0.1}},
		}
		w1 := float64(w1Raw) / 100
		w2 := w1 + float64(w2Raw)/100
		start := float64(startRaw) / 7
		d1 := m.WorkDuration(start, w1)
		d2 := m.WorkDuration(start, w2)
		if d2 < d1-1e-9 {
			return false
		}
		return d1 >= w1/speed-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a WorkDuration result is self-consistent — doing the work in
// two chunks takes as long as doing it at once.
func TestQuickWorkDurationAdditive(t *testing.T) {
	m := Machine{Speed: 0.8, Load: LoadTrace{Period: 0.7, Levels: []float64{0.2, 0.9, 0}}}
	f := func(aRaw, bRaw, startRaw uint16) bool {
		a := float64(aRaw) / 50
		b := float64(bRaw) / 50
		start := float64(startRaw) / 13
		whole := m.WorkDuration(start, a+b)
		first := m.WorkDuration(start, a)
		second := m.WorkDuration(start+first, b)
		return math.Abs(whole-(first+second)) < 1e-9*(1+whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidate(t *testing.T) {
	if err := (Cluster{}).Validate(); err == nil {
		t.Error("empty cluster accepted")
	}
	if err := (Cluster{Machines: []Machine{{Speed: 0}}}).Validate(); err == nil {
		t.Error("zero-speed machine accepted")
	}
	if err := (Cluster{Machines: []Machine{{Speed: 1}}, SendLatency: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	if err := Homogeneous(3, 1).Validate(); err != nil {
		t.Errorf("homogeneous cluster rejected: %v", err)
	}
}

func TestClusterMachineWraps(t *testing.T) {
	c := Homogeneous(3, 1)
	if c.Machine(5).Name != c.Machine(2).Name {
		t.Error("machine index should wrap")
	}
	if c.Machine(-1).Name == "" {
		t.Error("negative index should wrap, not panic")
	}
}

func TestMsgDelay(t *testing.T) {
	c := Cluster{Machines: []Machine{{Speed: 1}}, SendLatency: 1e-3, PerItem: 1e-6}
	if got := c.MsgDelay(1000); math.Abs(got-2e-3) > 1e-12 {
		t.Errorf("MsgDelay = %v, want 2e-3", got)
	}
	if c.MsgDelay(-5) != 1e-3 {
		t.Error("negative size should clamp")
	}
}

func TestTestbed12Composition(t *testing.T) {
	c := Testbed12(1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Machines) != 12 {
		t.Fatalf("%d machines, want 12", len(c.Machines))
	}
	counts := map[float64]int{}
	for _, m := range c.Machines {
		counts[m.Speed]++
	}
	if counts[1.0] != 7 || counts[0.55] != 3 || counts[0.3] != 2 {
		t.Fatalf("speed classes wrong: %v", counts)
	}
	// Loaded testbed must actually carry load.
	loaded := false
	for _, m := range c.Machines {
		if len(m.Load.Levels) > 0 {
			loaded = true
		}
	}
	if !loaded {
		t.Error("seeded testbed carries no load traces")
	}
	// Seed 0 must be idle.
	for _, m := range Testbed12(0).Machines {
		if len(m.Load.Levels) != 0 {
			t.Fatal("seed-0 testbed should be idle")
		}
	}
}

func TestTestbed12Deterministic(t *testing.T) {
	a, b := Testbed12(7), Testbed12(7)
	for i := range a.Machines {
		am, bm := a.Machines[i], b.Machines[i]
		if am.Speed != bm.Speed || am.Load.Period != bm.Load.Period ||
			len(am.Load.Levels) != len(bm.Load.Levels) {
			t.Fatal("testbed not deterministic")
		}
	}
}
