package core

import "pts/internal/tabu"

// State is the mutable per-worker search state the tabu engine drives.
// It is an alias of the engine's own Problem contract so that any state
// the engine can search, the parallel algorithm can distribute.
type State = tabu.Problem

// Problem is the problem-agnostic boundary of the parallel tabu search:
// anything that can mint independent search states over a shared
// solution encoding (a permutation of element indices) can be solved by
// RunProblem. VLSI placement (pts/internal/cost.PlacementProblem) and
// the quadratic assignment problem implement it; the engine itself
// never looks past this interface.
type Problem interface {
	// Name identifies the problem instance in results and progress
	// reports.
	Name() string
	// Size returns the number of swappable elements; snapshots are
	// permutations of [0, Size()).
	Size() int32
	// Initial derives the run's shared initial state deterministically
	// from seed. It is called exactly once per run, before any worker
	// spawns; implementations may derive run-scoped shared context
	// (e.g. fuzzy goals) here.
	Initial(seed uint64) (State, error)
	// NewState builds an independent worker state positioned at the
	// snapshot snap. It is called concurrently from worker goroutines in
	// Real mode and must be safe for concurrent use after Initial.
	NewState(snap []int32) (State, error)
}

// Finalizer is an optional Problem capability: exact, problem-specific
// scoring of the final best solution. When implemented, RunProblem
// stores the returned value in Result.Details.
type Finalizer interface {
	Finalize(best []int32) (any, error)
}

// Snapshot is one per-global-iteration progress observation, delivered
// to Config.Progress from the master as soon as a round's reports are
// collected.
type Snapshot struct {
	// Round is the 1-based index of the just-completed global iteration.
	Round int
	// Rounds is the total number of planned global iterations.
	Rounds int
	// BestCost is the global best cost after this round.
	BestCost float64
	// InitialCost is the cost of the shared initial solution.
	InitialCost float64
	// Elapsed is seconds since the run started (virtual or wall).
	Elapsed float64
	// Improved reports whether this round improved the global best.
	Improved bool
	// Reports is the number of TSW reports collected this round.
	Reports int
	// Forced is how many of those reports were forced by the half-sync
	// heterogeneity adaptation.
	Forced int
	// Stats aggregates the TSW-side counters reported so far (CLW
	// counters fold in only at shutdown and appear in Result.Stats).
	Stats WorkerStats
	// Shares is the adaptive scheduler's current element-space share per
	// TSW (summing to 1 over live workers); nil when adaptive
	// scheduling is off.
	Shares []float64
}

// configureEval applies the run's batch-evaluation mode to a freshly
// built worker state: relaxed accumulation when the run opted in
// (tabu.RelaxedAccumulator), and — for CLWs, the workers that actually
// batch-evaluate candidates — the evaluation pool (tabu.EvalPooler).
// Config.Validate already guarantees the pool only arises in relaxed
// mode; states without the capabilities search strictly, which is
// consistent because they then have no relaxed kernels to disagree
// with. Pool owners must tabu.Close the state when retiring it.
func configureEval(st State, cfg Config, pool bool) {
	if !cfg.RelaxedAccumulation {
		return
	}
	tabu.SetRelaxedAccumulation(st, true)
	if pool && cfg.EvalWorkers > 1 {
		tabu.SetEvalWorkers(st, cfg.EvalWorkers)
	}
}

// refresh resynchronizes a state's cached models (e.g. the placement
// evaluator's timing criticalities) when the state supports it.
func refresh(st State) {
	if rf, ok := st.(tabu.Refresher); ok {
		rf.Refresh()
	}
}

// snapshotterInto is an optional State capability: write the snapshot
// into a caller-owned buffer instead of allocating a fresh slice.
type snapshotterInto interface {
	SnapshotInto(dst []int32) []int32
}

// snapshotInto captures st's solution, reusing dst when the state
// supports it; the TSW's incumbent tracking calls this on every
// improvement, so the hot path stays allocation-free for such states.
func snapshotInto(st State, dst []int32) []int32 {
	if si, ok := st.(snapshotterInto); ok {
		return si.SnapshotInto(dst)
	}
	return st.Snapshot()
}
