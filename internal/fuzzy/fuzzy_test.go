package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMembershipShape(t *testing.T) {
	m := Membership{Goal: 10, Ceiling: 20}
	cases := []struct{ x, want float64 }{
		{5, 1}, {10, 1}, {15, 0.5}, {20, 0}, {25, 0}, {12.5, 0.75},
	}
	for _, c := range cases {
		if got := m.Eval(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestMembershipValid(t *testing.T) {
	if err := (Membership{Goal: 1, Ceiling: 2}).Valid(); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	for _, m := range []Membership{
		{Goal: 2, Ceiling: 2},
		{Goal: 3, Ceiling: 2},
		{Goal: math.NaN(), Ceiling: 2},
	} {
		if err := m.Valid(); err == nil {
			t.Errorf("invalid membership %+v accepted", m)
		}
	}
}

// Property: membership is always in [0,1] and monotone nonincreasing.
func TestQuickMembershipMonotone(t *testing.T) {
	f := func(goal int16, span uint8, x1, x2 int32) bool {
		m := Membership{Goal: float64(goal), Ceiling: float64(goal) + float64(span) + 1}
		a, b := float64(x1), float64(x2)
		if a > b {
			a, b = b, a
		}
		ma, mb := m.Eval(a), m.Eval(b)
		return ma >= 0 && ma <= 1 && mb >= 0 && mb <= 1 && ma >= mb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOWACombine(t *testing.T) {
	o := OWA{Beta: 0.5}
	// min = 0.2, mean = 0.5 → 0.5*0.2 + 0.5*0.5 = 0.35
	if got := o.Combine(0.2, 0.8, 0.5); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("Combine = %v, want 0.35", got)
	}
	if got := (OWA{Beta: 1}).Combine(0.2, 0.8); got != 0.2 {
		t.Errorf("pure-min OWA = %v", got)
	}
	if got := (OWA{Beta: 0}).Combine(0.2, 0.8); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("pure-mean OWA = %v", got)
	}
	if (OWA{Beta: 0.5}).Combine() != 0 {
		t.Error("empty Combine should be 0")
	}
}

func TestOWAValid(t *testing.T) {
	for _, beta := range []float64{-0.1, 1.1, math.NaN()} {
		if err := (OWA{Beta: beta}).Valid(); err == nil {
			t.Errorf("beta %v accepted", beta)
		}
	}
	if err := (OWA{Beta: 0.7}).Valid(); err != nil {
		t.Errorf("valid beta rejected: %v", err)
	}
}

// Property: OWA lies between min and mean (for beta in [0,1]) and within
// [0,1] for memberships in [0,1].
func TestQuickOWABounds(t *testing.T) {
	f := func(raw []uint8, betaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		mu := make([]float64, len(raw))
		min, sum := 1.0, 0.0
		for i, r := range raw {
			mu[i] = float64(r) / 255
			if mu[i] < min {
				min = mu[i]
			}
			sum += mu[i]
		}
		mean := sum / float64(len(mu))
		o := OWA{Beta: float64(betaRaw) / 255}
		got := o.Combine(mu...)
		return got >= min-1e-9 && got <= mean+1e-9 && got >= -1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndOrProduct(t *testing.T) {
	if And(0.3, 0.7) != 0.3 || And() != 0 {
		t.Error("And wrong")
	}
	if Or(0.3, 0.7) != 0.7 || Or() != 0 {
		t.Error("Or wrong")
	}
	if math.Abs(Product(0.5, 0.5)-0.25) > 1e-9 || Product() != 0 {
		t.Error("Product wrong")
	}
}

// Property: And <= OWA <= Or for any beta.
func TestQuickOperatorOrdering(t *testing.T) {
	f := func(a, b, c uint8, betaRaw uint8) bool {
		mu := []float64{float64(a) / 255, float64(b) / 255, float64(c) / 255}
		o := OWA{Beta: float64(betaRaw) / 255}
		owa := o.Combine(mu...)
		return And(mu...) <= owa+1e-9 && owa <= Or(mu...)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
