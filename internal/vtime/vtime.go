// Package vtime is a deterministic discrete-event kernel with processes
// as goroutines.
//
// The paper's runtime and speedup figures depend on *when* heterogeneous
// machines finish work relative to each other; measuring that with wall
// clocks on a modern laptop would say nothing about a 12-workstation 2003
// LAN and would differ run to run. The kernel instead advances a virtual
// clock: processes charge compute time explicitly (Sleep with a duration
// derived from their machine's speed and load) and exchange messages via
// scheduled events, so a whole parallel run is a deterministic function
// of its seed.
//
// Exactly one process runs at any instant; the kernel and the running
// process hand control back and forth over unbuffered channels, so no
// shared state needs locking. Events at equal times fire in schedule
// order.
package vtime

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is virtual seconds since Run started.
type Time float64

// event is a scheduled closure.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// blockReason distinguishes why a process is blocked.
type blockReason uint8

const (
	notBlocked blockReason = iota
	sleeping               // in Sleep: only its own timer may wake it
	suspended              // in Suspend: any Wake may (spuriously) wake it
)

// killed is the panic sentinel that unwinds abandoned processes when the
// kernel shuts down.
var killedSentinel = errors.New("vtime: process killed at shutdown")

// Proc is one process. Its methods must only be called from within its
// own body function while it is the running process.
type Proc struct {
	k         *Kernel
	id        int
	name      string
	fn        func(*Proc)
	wake      chan struct{}
	started   bool
	done      bool
	completed bool // body returned normally (not killed)
	reason    blockReason
	gen       uint64 // incremented at every block; stale wakes compare it
	kill      bool
	panicked  any // captured panic value, re-raised in kernel context
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel is the event scheduler. Create with NewKernel, add processes
// with Spawn, then Run.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   []*Proc
	yield   chan struct{}
	running bool
	events  uint64

	// MaxEvents aborts Run after this many events (0 = no limit); a
	// backstop against runaway process loops.
	MaxEvents uint64
}

// NewKernel creates an empty kernel.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time. Safe to call from the running
// process or between Run calls.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events processed so far.
func (k *Kernel) Events() uint64 { return k.events }

// schedule enqueues fn at absolute time at (clamped to now).
func (k *Kernel) schedule(at Time, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.queue, &event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run d from now. fn runs in kernel context: it
// must not block and must not call Proc methods; it may Wake processes
// and schedule further events.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, fn)
}

// Spawn registers a new process whose body starts at the current virtual
// time (after already-scheduled same-time events). Callable before Run
// or from a running process.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:    k,
		id:   len(k.procs),
		name: name,
		fn:   fn,
		wake: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.schedule(k.now, func() { k.resume(p) })
	return p
}

// resume hands control to p until it blocks or finishes.
func (k *Kernel) resume(p *Proc) {
	if p.done {
		return
	}
	p.reason = notBlocked
	if !p.started {
		p.started = true
		go func() {
			defer func() {
				p.done = true
				switch r := recover(); r {
				case nil:
					p.completed = true
				case killedSentinel:
					// Deliberate shutdown unwind; not a failure.
				default:
					// A process bug: capture it so the kernel re-raises
					// it in Run's goroutine, where callers can see it.
					p.panicked = fmt.Sprintf("vtime: process %q panicked: %v", p.name, r)
				}
				k.yield <- struct{}{}
			}()
			p.fn(p)
		}()
	} else {
		p.wake <- struct{}{}
	}
	<-k.yield
	if p.panicked != nil {
		panic(p.panicked)
	}
}

// block parks the running process with the given reason until resumed.
func (p *Proc) block(reason blockReason) {
	p.gen++
	p.reason = reason
	p.k.yield <- struct{}{}
	<-p.wake
	if p.kill {
		panic(killedSentinel)
	}
}

// Sleep advances the process's local time by d: it blocks and is woken
// by its own timer only. This is how processes charge compute time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	k := p.k
	gen := p.gen + 1 // generation the upcoming block will have
	k.schedule(k.now+d, func() {
		if !p.done && p.reason == sleeping && p.gen == gen {
			k.resume(p)
		}
	})
	p.block(sleeping)
}

// Suspend parks the process until some event calls Wake. Wakes can be
// spurious (a stale Wake event from a previous suspension); callers must
// re-check their condition in a loop.
func (p *Proc) Suspend() {
	p.block(suspended)
}

// Wake schedules p to resume at the current time if it is (still)
// suspended when the event fires. Calling it for a sleeping or running
// process is harmless. Must be called from kernel context (an After
// closure) or from the running process.
func (k *Kernel) Wake(p *Proc) {
	k.schedule(k.now, func() {
		if !p.done && p.reason == suspended {
			k.resume(p)
		}
	})
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// ErrEventLimit reports that Run aborted because MaxEvents fired.
var ErrEventLimit = errors.New("vtime: event limit exceeded")

// Run processes events until the queue drains, then kills any process
// still blocked (their goroutines unwind via the kill sentinel) and
// returns. It returns ErrEventLimit if MaxEvents was hit.
func (k *Kernel) Run() error {
	if k.running {
		return errors.New("vtime: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()

	var limitErr error
	for len(k.queue) > 0 {
		if k.MaxEvents > 0 && k.events >= k.MaxEvents {
			limitErr = ErrEventLimit
			break
		}
		k.events++
		ev := heap.Pop(&k.queue).(*event)
		k.now = ev.at
		ev.fn()
	}

	// Abandoned processes: unwind their goroutines deterministically.
	for _, p := range k.procs {
		if p.started && !p.done {
			p.kill = true
			k.resume(p)
		}
	}
	k.queue = nil
	return limitErr
}

// Stalled returns the names of processes whose bodies never returned
// normally (blocked forever, killed at shutdown, or never started);
// populated meaningfully after Run.
func (k *Kernel) Stalled() []string {
	var out []string
	for _, p := range k.procs {
		if !p.completed {
			out = append(out, p.name)
		}
	}
	return out
}
