package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pts/internal/rng"
)

// ReadBench parses the ISCAS-89 ".bench" netlist format — the format
// the paper's original circuits (c532, c1355, c3540, ...) are published
// in — so the real benchmarks can be dropped in where the synthetic
// stand-ins are used otherwise:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = NAND(G0, G1)
//	G17 = NOT(G10)
//	G22 = DFF(G17)
//
// Mapping to this package's model: every signal becomes a cell (inputs
// as Input pads, signals named in OUTPUT() as Output kind); every
// defined signal drives one net whose sinks are the gates consuming it.
// DFF outputs are treated as pseudo primary inputs and DFF inputs as
// pseudo primary outputs, which cuts sequential loops exactly the way
// combinational placement flows of the paper's era did.
//
// Cell widths and delays are not part of .bench; they are synthesized
// deterministically from seed with the same distributions the generator
// uses.
func ReadBench(r io.Reader, name string, seed uint64) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	type gateDef struct {
		out  string
		fn   string
		args []string
	}
	var (
		inputs  []string
		outputs = map[string]bool{}
		gates   []gateDef
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT"):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: .bench line %d: %v", lineNo, err)
			}
			inputs = append(inputs, sig)
		case strings.HasPrefix(upper, "OUTPUT"):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: .bench line %d: %v", lineNo, err)
			}
			outputs[sig] = true
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("netlist: .bench line %d: expected assignment, got %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, fmt.Errorf("netlist: .bench line %d: malformed gate %q", lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var args []string
			for _, a := range strings.Split(rhs[open+1:close], ",") {
				if a = strings.TrimSpace(a); a != "" {
					args = append(args, a)
				}
			}
			if len(args) == 0 {
				return nil, fmt.Errorf("netlist: .bench line %d: gate %s has no inputs", lineNo, out)
			}
			gates = append(gates, gateDef{out: out, fn: fn, args: args})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Build cells: inputs first, then gates in definition order. DFFs
	// become pseudo-inputs (their output appears combinationally
	// sourceless) — their data input is registered as a pseudo-output
	// sink via a dedicated pad below.
	rnd := rng.New(rng.Derive(seed, "netlist.bench", name))
	width := func() int { return 4 + rnd.Intn(9) }
	delay := func() float64 { return 0.08 + rnd.Float64()*0.52 }

	nl := &Netlist{Name: name}
	id := map[string]CellID{}
	addCell := func(sig string, kind CellKind, d float64) CellID {
		c := CellID(len(nl.Cells))
		nl.Cells = append(nl.Cells, Cell{Name: sig, Width: width(), Delay: d, Kind: kind})
		id[sig] = c
		return c
	}
	for _, sig := range inputs {
		if _, dup := id[sig]; dup {
			return nil, fmt.Errorf("netlist: .bench: duplicate INPUT(%s)", sig)
		}
		addCell(sig, Input, 0.02)
	}
	isDFF := func(g gateDef) bool { return g.fn == "DFF" }
	for _, g := range gates {
		if _, dup := id[g.out]; dup {
			return nil, fmt.Errorf("netlist: .bench: signal %s defined twice", g.out)
		}
		kind := Gate
		d := delay()
		if isDFF(g) {
			// Flip-flop output: a combinational source, like a PI.
			kind = Input
			d = 0.02
		} else if outputs[g.out] {
			kind = Output
		}
		addCell(g.out, kind, d)
	}

	// Sinks per driving signal. A DFF's data input is a timing endpoint:
	// it gets its own sink cell (Output kind) so the sequential arc is
	// cut — making the Q-cell itself the sink would re-close the loop
	// combinationally.
	sinks := map[string][]CellID{}
	for _, g := range gates {
		if isDFF(g) {
			if _, ok := id[g.args[0]]; !ok {
				return nil, fmt.Errorf("netlist: .bench: DFF %s uses undefined signal %s", g.out, g.args[0])
			}
			d := addCell(g.out+"_d", Output, 0.02)
			sinks[g.args[0]] = append(sinks[g.args[0]], d)
			continue
		}
		for _, a := range g.args {
			if _, ok := id[a]; !ok {
				return nil, fmt.Errorf("netlist: .bench: gate %s uses undefined signal %s", g.out, a)
			}
			sinks[a] = append(sinks[a], id[g.out])
		}
	}

	// Materialize nets in cell order; dangling signals (no sinks) that
	// are not primary outputs get a pseudo output pad so nothing floats.
	for c := 0; c < len(nl.Cells); c++ {
		sig := nl.Cells[c].Name
		sk := dedupeSinks(sinks[sig])
		// Drop self-loops (a DFF whose input is its own output).
		filtered := sk[:0]
		for _, s := range sk {
			if s != CellID(c) {
				filtered = append(filtered, s)
			}
		}
		sk = filtered
		if len(sk) == 0 {
			if nl.Cells[c].Kind == Output {
				continue // true primary output: consumed off-chip
			}
			pad := addCell(sig+"_po", Output, 0.02)
			sk = []CellID{pad}
		}
		nl.Nets = append(nl.Nets, Net{Name: "n_" + sig, Driver: CellID(c), Sinks: sk})
	}

	if err := nl.Finish(); err != nil {
		return nil, err
	}
	return nl, nil
}

// parenArg extracts X from "KEYWORD(X)".
func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed directive %q", line)
	}
	sig := strings.TrimSpace(line[open+1 : close])
	if sig == "" {
		return "", fmt.Errorf("empty signal in %q", line)
	}
	return sig, nil
}
