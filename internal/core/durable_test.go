package core

import (
	"context"
	"testing"
	"time"

	"pts/internal/cluster"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/store"
)

// durableCfg is quickCfg with a store attached: durable discipline on,
// checkpoint every report (the default cadence, required for bit-exact
// resume).
func durableCfg(st store.Store) Config {
	cfg := quickCfg()
	cfg.GlobalIters = 6
	cfg.Store = st
	cfg.RunID = "t"
	return cfg
}

func placementProblem(cfg Config) Problem {
	return cost.NewPlacementProblem(netlist.MustBenchmark("highway"), cfg.Utilization, cfg.Cost)
}

// TestDurableResumeMatchesUninterrupted is the crash-only contract: a
// run killed after its snapshot barrier and restarted from the store
// finishes with exactly the result the uninterrupted store-enabled run
// produces (Virtual mode, fixed seed, static workers).
func TestDurableResumeMatchesUninterrupted(t *testing.T) {
	clus := cluster.Homogeneous(12, 1)

	// Reference: uninterrupted durable run.
	refStore := store.NewMem()
	refCfg := durableCfg(refStore)
	ref, err := RunProblem(context.Background(), placementProblem(refCfg), clus, refCfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted {
		t.Fatal("reference run interrupted")
	}
	if _, ok, _ := refStore.Get(refCfg.runKey()); ok {
		t.Fatal("snapshot not deleted after clean completion")
	}

	// Interrupted: cancel from the progress callback right after the
	// round-2 barrier — deterministically, inside the master's own event.
	st := store.NewMem()
	cfg := durableCfg(st)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Progress = func(s Snapshot) {
		if s.Round == 2 {
			cancel()
		}
	}
	cut, err := RunProblem(ctx, placementProblem(cfg), clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Interrupted {
		t.Fatal("cancelled run not marked interrupted")
	}
	if cut.Rounds != 2 {
		t.Fatalf("interrupted after %d rounds, want 2", cut.Rounds)
	}
	if _, ok, _ := st.Get(cfg.runKey()); !ok {
		t.Fatal("interrupted run left no snapshot")
	}

	// Resume: same store, same config, fresh context.
	cfg2 := durableCfg(st)
	res, err := RunProblem(context.Background(), placementProblem(cfg2), clus, cfg2, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("resumed run interrupted")
	}
	if res.Rounds != cfg2.GlobalIters {
		t.Fatalf("resumed run completed %d rounds, want %d", res.Rounds, cfg2.GlobalIters)
	}
	if res.BestCost != ref.BestCost {
		t.Fatalf("resumed best %v != uninterrupted best %v", res.BestCost, ref.BestCost)
	}
	for i := range ref.BestPerm {
		if res.BestPerm[i] != ref.BestPerm[i] {
			t.Fatal("resumed best permutation differs from uninterrupted run")
		}
	}
	if _, ok, _ := st.Get(cfg2.runKey()); ok {
		t.Fatal("snapshot not deleted after resumed completion")
	}
}

// TestDurableSnapshotFingerprint: a snapshot from different run inputs
// under the same RunID is refused, not resumed.
func TestDurableSnapshotFingerprint(t *testing.T) {
	st := store.NewMem()
	cfg := durableCfg(st)
	prob := placementProblem(cfg)
	st0, err := prob.Initial(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	initPerm := st0.Snapshot()

	good := &masterSnapshot{
		Problem: prob.Name(), Size: prob.Size(), Seed: cfg.Seed,
		Round: 2, BestPerm: append([]int32(nil), initPerm...),
	}
	put := func(s *masterSnapshot) {
		b, err := encodeSnapshot(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(cfg.runKey(), b); err != nil {
			t.Fatal(err)
		}
	}
	put(good)
	if loadSnapshot(prob, cfg, initPerm) == nil {
		t.Fatal("matching snapshot refused")
	}
	mutations := []func(*masterSnapshot){
		func(s *masterSnapshot) { s.Problem = "other" },
		func(s *masterSnapshot) { s.Size++ },
		func(s *masterSnapshot) { s.Seed++ },
		func(s *masterSnapshot) { s.Round = 0 },
		func(s *masterSnapshot) { s.BestPerm = s.BestPerm[:1] },
	}
	for i, mut := range mutations {
		s := *good
		s.BestPerm = append([]int32(nil), good.BestPerm...)
		mut(&s)
		put(&s)
		if loadSnapshot(prob, cfg, initPerm) != nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Corrupt bytes are "no snapshot", not an error.
	if err := st.Put(cfg.runKey(), []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	if loadSnapshot(prob, cfg, initPerm) != nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestDurableNoStoreUnchanged: without a store, runs stay bit-identical
// to the non-durable baseline — the durability fields never enter the
// message streams.
func TestDurableNoStoreUnchanged(t *testing.T) {
	clus := cluster.Testbed12(5)
	cfg := quickCfg()
	nl := netlist.MustBenchmark("highway")
	a, err := Run(nl, clus, cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := cfg
	cfgD.Durable = false // explicit: the wire flag defaults off
	b, err := Run(nl, clus, cfgD, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestCost != b.BestCost || a.Elapsed != b.Elapsed {
		t.Fatalf("no-store runs diverged: (%v,%v) vs (%v,%v)",
			a.BestCost, a.Elapsed, b.BestCost, b.Elapsed)
	}
}

// TestDurableRunIDValidation: a RunID that is not a valid store key
// segment is a config error, caught before the run starts.
func TestDurableRunIDValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Store = store.NewMem()
	cfg.RunID = "../escape"
	if err := cfg.Validate(); err == nil {
		t.Fatal("path-escaping RunID accepted")
	}
	cfg.RunID = "job-12"
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid RunID rejected: %v", err)
	}
	cfg.RunID = "" // empty defaults to "run"
	if err := cfg.Validate(); err != nil {
		t.Fatalf("empty RunID rejected: %v", err)
	}
}

// TestDurableResumeMidRoundCancel guards the snapshot against
// cancellations that land in the middle of a round (Real mode,
// wall-clock timer): TSWs truncate their local searches and still
// report, but the master must not persist that barrier — resuming from
// cancel-truncated reports would fork off the uninterrupted trajectory.
// The timer may land anywhere (before the first barrier, mid-round,
// even after completion); the bit-identity contract holds for all of
// them, so the test is timing-independent.
func TestDurableResumeMidRoundCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("real-mode wall-clock test")
	}
	clus := cluster.Homogeneous(12, 1)
	mk := func(st store.Store) Config {
		cfg := durableCfg(st)
		cfg.GlobalIters = 10
		cfg.HalfSync = false // static collection: Real mode is deterministic
		cfg.WorkScale = 15   // stretch rounds so a timer can land inside one
		// One CLW per TSW: with several, equal-delta candidates from
		// different CLWs tie-break by arrival order, which scheduler
		// jitter (notably under -race) can flip — a real-mode property
		// independent of the store that would mask what this test is
		// for.
		cfg.CLWs = 1
		return cfg
	}

	refStore := store.NewMem()
	refCfg := mk(refStore)
	start := time.Now()
	ref, err := RunProblem(context.Background(), placementProblem(refCfg), clus, refCfg, Real)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Interrupted {
		t.Fatal("reference run interrupted")
	}
	full := time.Since(start)

	st := store.NewMem()
	cfg := mk(st)
	ctx, cancel := context.WithTimeout(context.Background(), full*2/5)
	defer cancel()
	cut, err := RunProblem(ctx, placementProblem(cfg), clus, cfg, Real)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cut after %v of %v: %d rounds, interrupted=%v",
		full*2/5, full, cut.Rounds, cut.Interrupted)

	cfg2 := mk(st)
	res, err := RunProblem(context.Background(), placementProblem(cfg2), clus, cfg2, Real)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("resumed run interrupted")
	}
	if res.Rounds != cfg2.GlobalIters {
		t.Fatalf("resumed run completed %d rounds, want %d", res.Rounds, cfg2.GlobalIters)
	}
	if res.BestCost != ref.BestCost {
		t.Fatalf("resumed best %v != uninterrupted best %v", res.BestCost, ref.BestCost)
	}
	for i := range ref.BestPerm {
		if res.BestPerm[i] != ref.BestPerm[i] {
			t.Fatal("resumed best permutation differs from uninterrupted run")
		}
	}
	if _, ok, _ := st.Get(cfg2.runKey()); ok {
		t.Fatal("snapshot not deleted after resumed completion")
	}
}
