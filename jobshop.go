package pts

import (
	"fmt"
	"os"

	"pts/internal/jobshop"
	"pts/internal/rng"
	"pts/internal/schedinst"
)

// JobShopProblem is the job shop scheduling problem — each job visits
// the machines in its own order, minimize the makespan — as a built-in
// workload. Solutions use the operation-based permutation encoding: a
// permutation of n·m operation tokens where token t belongs to job
// t/m, decoded by semi-active dispatch in token order. Every
// permutation decodes to a feasible schedule, so the engine's swap
// moves, snapshots and element partitioning all apply unchanged.
// Deltas are honest full re-decodes (O(nm)), the worst-case Evaluator
// shape the batch boundary amortizes; swapping two tokens of the same
// job is recognized as cost-neutral without decoding.
type JobShopProblem struct {
	ins *schedinst.JobShop
}

// JobShopBenchmark returns a named embedded OR-Library benchmark
// instance (ft06, ft10, la01). JobShopInstances lists the names.
func JobShopBenchmark(name string) (*JobShopProblem, error) {
	ins, err := schedinst.JobShopByName(name)
	if err != nil {
		return nil, err
	}
	return &JobShopProblem{ins: ins}, nil
}

// JobShopInstances lists the embedded job shop benchmark names.
func JobShopInstances() []string { return schedinst.JobShopNames() }

// JobShopFromFile parses an OR-Library-format instance file.
func JobShopFromFile(path string) (*JobShopProblem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ins, err := schedinst.ParseORLib(stemOf(path), f)
	if err != nil {
		return nil, err
	}
	return &JobShopProblem{ins: ins}, nil
}

// RandomJobShop generates a random jobs × machines instance where each
// job visits every machine once in a random order, deterministic in
// seed.
func RandomJobShop(jobs, machines int, seed uint64) *JobShopProblem {
	return &JobShopProblem{ins: jobshop.Random(jobs, machines, seed)}
}

// NewJobShop builds an instance from explicit routing and duration
// matrices: machine[j][o] and dur[j][o] describe job j's o-th
// operation.
func NewJobShop(name string, machine, dur [][]int) (*JobShopProblem, error) {
	ins, err := jobshop.New(name, machine, dur)
	if err != nil {
		return nil, err
	}
	return &JobShopProblem{ins: ins}, nil
}

// Name identifies the instance.
func (p *JobShopProblem) Name() string { return "jobshop-" + p.ins.Name }

// Size returns the number of operation tokens (jobs × machines).
func (p *JobShopProblem) Size() int32 { return int32(p.ins.Jobs * p.ins.Machines) }

// Describe summarizes the instance dimensions and published optimum.
func (p *JobShopProblem) Describe() string {
	s := fmt.Sprintf("%d jobs x %d machines (%d operations)",
		p.ins.Jobs, p.ins.Machines, p.ins.Jobs*p.ins.Machines)
	if p.ins.Optimum > 0 {
		s += fmt.Sprintf(", published optimum %d", p.ins.Optimum)
	}
	return s
}

// Instance exposes the parsed instance data.
func (p *JobShopProblem) Instance() *schedinst.JobShop { return p.ins }

// Initial derives the run's shared initial token permutation from seed.
func (p *JobShopProblem) Initial(seed uint64) (State, error) {
	return jobshop.NewState(p.ins, rng.Derive(seed, "pts.jobshop.initial")), nil
}

// NewState builds an independent state positioned at snap.
func (p *JobShopProblem) NewState(snap []int32) (State, error) {
	return jobshop.NewStateAt(p.ins, snap)
}

// Details re-decodes a solution from scratch and returns a
// JobShopDetails.
func (p *JobShopProblem) Details(best []int32) (any, error) {
	ms, err := p.Makespan(best)
	if err != nil {
		return nil, err
	}
	return JobShopDetails{
		Makespan:   ms,
		LowerBound: jobshop.LowerBound(p.ins),
		Optimum:    p.ins.Optimum,
	}, nil
}

// Makespan decodes a token permutation exactly with the from-scratch
// semi-active dispatcher.
func (p *JobShopProblem) Makespan(perm []int32) (int, error) {
	s, err := jobshop.NewStateAt(p.ins, perm)
	if err != nil {
		return 0, err
	}
	return s.Makespan(), nil
}

// BruteForceOptimum exhaustively finds the optimal makespan; limited to
// tiny instances (jobs × machines <= 12), the test oracle.
func (p *JobShopProblem) BruteForceOptimum() int { return jobshop.BruteForceOptimum(p.ins) }

// JobShopDetails is the exact scoring of a job shop solution.
type JobShopDetails struct {
	// Makespan is the solution's makespan re-decoded from scratch.
	Makespan int
	// LowerBound is the machine/job-load lower bound of the instance.
	LowerBound int
	// Optimum is the published optimal makespan, 0 when unknown.
	Optimum int
}
