package netlist

import (
	"fmt"
	"math/rand"
	"sort"
)

// The paper evaluates four ISCAS-89-derived standard-cell circuits:
//
//	highway —   56 cells
//	c532    —  395 cells
//	c1355   — 1451 cells
//	c3540   — 2243 cells
//
// The original converted netlists were never published, so the named
// instances below are synthetic circuits with identical cell counts and
// realistic connectivity (see DESIGN.md §4). Seeds are fixed: the
// instances are stable across runs and machines.

// benchSpecs maps benchmark names to their generator configurations.
var benchSpecs = map[string]GenConfig{
	"highway": {Name: "highway", Cells: 56, Inputs: 8, Outputs: 7, Seed: 0x6877790001},
	"c532":    {Name: "c532", Cells: 395, Inputs: 35, Outputs: 23, Seed: 0xc5320001},
	"c1355":   {Name: "c1355", Cells: 1451, Inputs: 41, Outputs: 32, Seed: 0xc13550001},
	"c3540":   {Name: "c3540", Cells: 2243, Inputs: 50, Outputs: 22, Seed: 0xc35400001},
}

// BenchmarkNames lists the paper's circuits in ascending size order.
func BenchmarkNames() []string {
	names := make([]string, 0, len(benchSpecs))
	for n := range benchSpecs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return benchSpecs[names[i]].Cells < benchSpecs[names[j]].Cells })
	return names
}

// Benchmark returns the named synthetic stand-in for one of the paper's
// circuits. The same name always yields the identical netlist.
func Benchmark(name string) (*Netlist, error) {
	spec, ok := benchSpecs[name]
	if !ok {
		return nil, fmt.Errorf("netlist: unknown benchmark %q (have %v)", name, BenchmarkNames())
	}
	return Generate(spec)
}

// MustBenchmark is Benchmark but panics on error; the embedded specs are
// known-good.
func MustBenchmark(name string) *Netlist {
	nl, err := Benchmark(name)
	if err != nil {
		panic(err)
	}
	return nl
}

// BenchmarkCells reports the cell count of a named benchmark without
// generating it, or 0 if the name is unknown.
func BenchmarkCells(name string) int {
	return benchSpecs[name].Cells
}

// BenchmarkPairs returns n deterministic pseudo-random pairs of distinct
// cells from a circuit of the given size — the shared trial workload of
// the hot-path microbenchmarks (the go-test benches in
// internal/placement and internal/cost and the ptsbench -hotpath
// driver), so they all measure the identical kernel.
func BenchmarkPairs(n, cells int) [][2]CellID {
	r := rand.New(rand.NewSource(2))
	pairs := make([][2]CellID, n)
	for i := range pairs {
		a := CellID(r.Intn(cells))
		b := CellID(r.Intn(cells))
		for b == a {
			b = CellID(r.Intn(cells))
		}
		pairs[i] = [2]CellID{a, b}
	}
	return pairs
}
