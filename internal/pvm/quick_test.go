package pvm

import (
	"testing"
	"testing/quick"
)

// Property: messages of the same tag between one sender/receiver pair
// are delivered FIFO in the virtual runtime, whatever the payload
// sizes (which vary the modeled latency per message).
func TestQuickSameTagFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 50 {
			return true
		}
		ok := true
		_, err := RunVirtual(Options{Seed: 44}, func(env Env) {
			child := env.Spawn("rx", 0, func(e Env) {
				for i := range sizes {
					m := e.Recv(tagData)
					if m.Data.(payloadWithSize).seq != i {
						ok = false
					}
				}
				e.Send(0, tagStop, nil)
			})
			for i, s := range sizes {
				env.Send(child, tagData, payloadWithSize{seq: i, items: int(s)})
			}
			env.Recv(tagStop)
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

type payloadWithSize struct {
	seq   int
	items int
}

func (p payloadWithSize) PVMItems() int { return p.items }

// Property: TryRecv never invents messages and Recv never loses them —
// send n, receive exactly n across a mix of both calls.
func TestQuickConservation(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%40) + 1
		got := 0
		_, err := RunVirtual(Options{Seed: 45}, func(env Env) {
			child := env.Spawn("rx", 0, func(e Env) {
				for got < n {
					if m, ok := e.TryRecv(tagData); ok {
						_ = m
						got++
						continue
					}
					e.Recv(tagPing) // timed nudge channel
				}
				e.Send(0, tagStop, nil)
			})
			for i := 0; i < n; i++ {
				env.Send(child, tagData, i)
				env.Send(child, tagPing, nil)
			}
			env.Recv(tagStop)
			// Drain leftover pings so the child isn't stalled... child
			// exits after counting; leftover messages in its inbox are
			// fine.
		})
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
