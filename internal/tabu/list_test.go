package tabu

import (
	"testing"
	"testing/quick"
)

func TestAttrCanonical(t *testing.T) {
	if Attr(5, 2) != Attr(2, 5) {
		t.Error("Attr not canonical")
	}
	if Attr(2, 5) != (Attribute{A: 2, B: 5}) {
		t.Error("Attr wrong order")
	}
}

func TestListTenure(t *testing.T) {
	l := NewList()
	l.Add(Attr(1, 2), 10)
	for iter := int64(0); iter < 10; iter++ {
		if !l.IsTabu(Attr(1, 2), iter) {
			t.Fatalf("should be tabu at iter %d", iter)
		}
	}
	if l.IsTabu(Attr(1, 2), 10) {
		t.Error("should expire at iter 10")
	}
	if l.IsTabu(Attr(3, 4), 0) {
		t.Error("never-added attribute is tabu")
	}
}

func TestListAddNeverShortens(t *testing.T) {
	l := NewList()
	l.Add(Attr(1, 2), 20)
	l.Add(Attr(1, 2), 5) // must not shorten
	if !l.IsTabu(Attr(1, 2), 15) {
		t.Error("re-add shortened tenure")
	}
	l.Add(Attr(1, 2), 30) // extend
	if !l.IsTabu(Attr(1, 2), 25) {
		t.Error("re-add did not extend tenure")
	}
}

func TestAnyTabu(t *testing.T) {
	l := NewList()
	l.Add(Attr(1, 2), 10)
	if !l.AnyTabu([]Attribute{Attr(7, 8), Attr(1, 2)}, 5) {
		t.Error("AnyTabu missed tabu attr")
	}
	if l.AnyTabu([]Attribute{Attr(7, 8)}, 5) {
		t.Error("AnyTabu false positive")
	}
	if l.AnyTabu(nil, 5) {
		t.Error("AnyTabu on empty list")
	}
}

func TestRemainingTenure(t *testing.T) {
	l := NewList()
	l.Add(Attr(1, 2), 10)
	l.Add(Attr(3, 4), 20)
	attrs := []Attribute{Attr(1, 2), Attr(3, 4)}
	if got := l.RemainingTenure(attrs, 5); got != 15 {
		t.Errorf("RemainingTenure = %d, want 15", got)
	}
	if got := l.RemainingTenure(attrs, 25); got != 0 {
		t.Errorf("expired RemainingTenure = %d, want 0", got)
	}
}

func TestExportImport(t *testing.T) {
	l := NewList()
	l.Add(Attr(1, 2), 110) // remaining 10 at now=100
	l.Add(Attr(3, 4), 105) // remaining 5
	l.Add(Attr(5, 6), 90)  // expired
	entries := l.Export(100)
	if len(entries) != 2 {
		t.Fatalf("Export kept %d entries, want 2", len(entries))
	}

	// Import into a list with a completely different clock.
	m := NewList()
	m.Import(entries, 1000)
	if !m.IsTabu(Attr(1, 2), 1009) || m.IsTabu(Attr(1, 2), 1010) {
		t.Error("imported tenure wrong for (1,2)")
	}
	if !m.IsTabu(Attr(3, 4), 1004) || m.IsTabu(Attr(3, 4), 1005) {
		t.Error("imported tenure wrong for (3,4)")
	}
	if m.IsTabu(Attr(5, 6), 1000) {
		t.Error("expired entry resurrected")
	}
}

func TestListPruneBoundsGrowth(t *testing.T) {
	l := NewList()
	// Insert far more short-lived attributes than the prune threshold.
	for i := int64(0); i < 100000; i++ {
		l.Add(Attr(int32(i%1000), int32(i%1000)+1+int32(i/1000)), i+5)
	}
	if l.Len() > 50000 {
		t.Fatalf("tabu list grew unboundedly: %d entries", l.Len())
	}
}

func TestReset(t *testing.T) {
	l := NewList()
	l.Add(Attr(1, 2), 100)
	l.Reset()
	if l.Len() != 0 || l.IsTabu(Attr(1, 2), 0) {
		t.Error("Reset did not clear")
	}
}

// Property: export/import round-trips remaining tenures exactly.
func TestQuickExportImportRoundTrip(t *testing.T) {
	f := func(pairs []uint16, nowRaw uint8) bool {
		now := int64(nowRaw)
		l := NewList()
		for _, p := range pairs {
			a, b := int32(p>>8), int32(p&0xff)
			if a == b {
				continue
			}
			l.Add(Attr(a, b), now+int64(p%37)+1)
		}
		entries := l.Export(now)
		m := NewList()
		m.Import(entries, now)
		for _, e := range entries {
			if l.RemainingTenure([]Attribute{e.At}, now) != m.RemainingTenure([]Attribute{e.At}, now) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
