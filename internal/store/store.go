// Package store is the pluggable durability boundary behind crash-only
// operations: a minimal key/value contract over opaque byte values that
// both the master run-state snapshots (internal/core) and the ptsd job
// journal (internal/serve) persist through.
//
// The interface is deliberately bytes-level — callers pick their own
// encoding (core uses gob for snapshots, serve uses JSON for the job
// journal) so the store stays encoding-agnostic and trivially
// implementable. Keys are slash-separated paths ("runs/<id>",
// "jobs/<id>"); List enumerates by prefix, which is all the recovery
// scans need.
//
// Two implementations ship: FileStore (one file per key under a root
// directory, atomic tmp+rename writes, survives process death) and
// MemStore (map under a mutex, for tests and ephemeral runs). Both are
// safe for concurrent use.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the durability contract. Implementations must be safe for
// concurrent use; Put must be atomic (a crashed writer never leaves a
// torn value visible to Get).
type Store interface {
	// Put durably associates key with value, replacing any previous
	// value. The value slice is not retained.
	Put(key string, value []byte) error
	// Get returns the value stored at key. ok is false (with a nil
	// error) when the key has never been Put or was Deleted.
	Get(key string) (value []byte, ok bool, err error)
	// Delete removes key. Deleting an absent key is not an error.
	Delete(key string) error
	// List returns the keys beginning with prefix, sorted.
	List(prefix string) ([]string, error)
}

// ValidKey reports whether key is acceptable to the implementations in
// this package: non-empty slash-separated segments of letters, digits,
// and [-_.], with no "."/".." segments — so a key can never escape a
// FileStore root or collide with its temp files.
func ValidKey(key string) bool {
	if key == "" {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
		for _, c := range seg {
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			case c == '-' || c == '_' || c == '.':
			default:
				return false
			}
		}
	}
	return true
}

func checkKey(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	return nil
}

// MemStore is an in-memory Store: exact interface semantics, zero
// durability. The zero value is ready to use.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{} }

// Put implements Store.
func (s *MemStore) Put(key string, value []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string][]byte)
	}
	s.m[key] = append([]byte(nil), value...)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// FileStore is a file-backed Store: each key is one file under the
// root directory (slash segments become subdirectories), written
// atomically via a temp file + rename so a crash mid-Put leaves either
// the old value or the new one, never a torn file.
type FileStore struct {
	root string
	// mu serializes writers per process; cross-process atomicity comes
	// from the rename itself.
	mu sync.Mutex
}

// Open creates (if needed) and opens a file store rooted at dir.
func Open(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &FileStore{root: dir}, nil
}

// Root returns the backing directory.
func (s *FileStore) Root() string { return s.root }

func (s *FileStore) path(key string) string {
	return filepath.Join(s.root, filepath.FromSlash(key))
}

// Put implements Store.
func (s *FileStore) Put(key string, value []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(value); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(key string) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: get %s: %w", key, err)
	}
	return b, true, nil
}

// Delete implements Store.
func (s *FileStore) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return nil
}

// List implements Store.
func (s *FileStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // root vanished or raced a delete: empty listing
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, ".tmp-") {
			return nil // abandoned atomic-write temp from a crashed Put
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", prefix, err)
	}
	sort.Strings(keys)
	return keys, nil
}
