package sched

import (
	"testing"
	"testing/quick"
)

// checkPartition asserts the structural invariants every partition of
// [0, n) must satisfy: sorted, contiguous over the positive-weight
// workers, covering exactly [0, n), empty for non-positive weights.
func checkPartition(t *testing.T, n int32, weights []float64, rs [][2]int32) {
	t.Helper()
	if len(rs) != len(weights) {
		t.Fatalf("got %d ranges for %d weights", len(rs), len(weights))
	}
	var covered int32
	at := int32(0)
	for i, r := range rs {
		if r[1] < r[0] {
			t.Fatalf("range %d inverted: %v", i, r)
		}
		if r[1] > r[0] {
			if r[0] != at {
				t.Fatalf("range %d not contiguous: starts at %d, expected %d", i, r[0], at)
			}
			at = r[1]
			covered += r[1] - r[0]
		}
		if weights[i] <= 0 && r[1] > r[0] {
			t.Fatalf("dead worker %d got non-empty range %v", i, r)
		}
	}
	alive := 0
	for _, w := range weights {
		if w > 0 {
			alive++
		}
	}
	want := n
	if alive == 0 || n < 0 {
		want = 0
	}
	if covered != want {
		t.Fatalf("partition covers %d of %d elements", covered, want)
	}
}

func TestPartitionProportional(t *testing.T) {
	n := int32(700)
	rs := Partition(n, []float64{4, 1, 1, 1})
	checkPartition(t, n, []float64{4, 1, 1, 1}, rs)
	// The 4x worker owns 4/7 of the space, exactly (700 divides evenly).
	if sz := rs[0][1] - rs[0][0]; sz != 400 {
		t.Errorf("fast worker got %d elements, want 400", sz)
	}
	for i := 1; i < 4; i++ {
		if sz := rs[i][1] - rs[i][0]; sz != 100 {
			t.Errorf("slow worker %d got %d elements, want 100", i, sz)
		}
	}
}

func TestPartitionDeadWorkerFoldedIn(t *testing.T) {
	n := int32(100)
	weights := []float64{1, 0, 1}
	rs := Partition(n, weights)
	checkPartition(t, n, weights, rs)
	if sz := rs[0][1] - rs[0][0]; sz != 50 {
		t.Errorf("survivor 0 got %d, want 50", sz)
	}
	if sz := rs[2][1] - rs[2][0]; sz != 50 {
		t.Errorf("survivor 2 got %d, want 50", sz)
	}
}

func TestPartitionMinOneGuarantee(t *testing.T) {
	// A tiny weight must still receive one element while n allows.
	n := int32(10)
	weights := []float64{1000, 1e-6, 1000}
	rs := Partition(n, weights)
	checkPartition(t, n, weights, rs)
	if sz := rs[1][1] - rs[1][0]; sz < 1 {
		t.Errorf("starved the slow worker: %v", rs)
	}
}

func TestPartitionMoreWorkersThanElements(t *testing.T) {
	// k > n: the lowest-indexed workers get one element each, the rest
	// go empty — no inverted or overlapping ranges.
	n := int32(3)
	weights := []float64{1, 1, 1, 1, 1}
	rs := Partition(n, weights)
	checkPartition(t, n, weights, rs)
	nonEmpty := 0
	for _, r := range rs {
		if r[1] > r[0] {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Errorf("%d non-empty ranges for n=3, want 3: %v", nonEmpty, rs)
	}
}

func TestPartitionDegenerate(t *testing.T) {
	for _, tc := range []struct {
		n int32
		w []float64
	}{
		{0, []float64{1, 2}},
		{10, []float64{0, 0}},
		{10, nil},
		{-5, []float64{1}},
	} {
		rs := Partition(tc.n, tc.w)
		for i, r := range rs {
			if r[1] != r[0] {
				t.Errorf("n=%d w=%v: range %d not empty: %v", tc.n, tc.w, i, r)
			}
		}
	}
}

func TestPartitionQuick(t *testing.T) {
	f := func(nRaw uint16, wRaw []uint8) bool {
		n := int32(nRaw % 5000)
		if len(wRaw) == 0 || len(wRaw) > 32 {
			return true
		}
		weights := make([]float64, len(wRaw))
		for i, w := range wRaw {
			weights[i] = float64(w) // zero stays zero: dead worker
		}
		rs := Partition(n, weights)
		// Re-run the structural checks without t.Fatal.
		var covered int32
		at := int32(0)
		for i, r := range rs {
			if r[1] < r[0] {
				return false
			}
			if r[1] > r[0] {
				if weights[i] <= 0 || r[0] != at {
					return false
				}
				at = r[1]
				covered += r[1] - r[0]
			}
		}
		alive := 0
		for _, w := range weights {
			if w > 0 {
				alive++
			}
		}
		if alive == 0 {
			return covered == 0
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMoved(t *testing.T) {
	old := [][2]int32{{0, 50}, {50, 100}}
	same := [][2]int32{{0, 50}, {50, 100}}
	if m := Moved(old, same); m != 0 {
		t.Errorf("identical partitions moved %d", m)
	}
	shifted := [][2]int32{{0, 60}, {60, 100}}
	if m := Moved(old, shifted); m != 10 {
		t.Errorf("10-element shift moved %d", m)
	}
}

func TestTrackerSeedsFromSpeeds(t *testing.T) {
	tr := NewTracker(700, []float64{4, 1, 1, 1})
	rs := tr.Partition()
	if sz := rs[0][1] - rs[0][0]; sz != 400 {
		t.Errorf("speed-seeded share = %d, want 400", sz)
	}
	shares := tr.Shares()
	if shares[0] < 0.57 || shares[0] > 0.58 {
		t.Errorf("fast share = %v, want ~4/7", shares[0])
	}
}

func TestTrackerConvergesToObservedRate(t *testing.T) {
	// Seeded equal, but worker 0 is observed doing 4x the work per
	// second: its weight must converge toward 4x the others'.
	tr := NewTracker(1000, []float64{1, 1})
	now, work0, work1 := 0.0, 0.0, 0.0
	for step := 0; step < 12; step++ {
		now += 1.0
		work0 += 400
		work1 += 100
		tr.Observe(0, work0, now)
		tr.Observe(1, work1, now)
	}
	w := tr.Weights()
	ratio := w[0] / w[1]
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("weight ratio = %v after 4:1 observations, want ~4", ratio)
	}
}

func TestTrackerFirstObservationIsBaseline(t *testing.T) {
	tr := NewTracker(100, []float64{2, 1})
	tr.Observe(0, 1e9, 1.0) // huge cumulative reading: baseline only
	w := tr.Weights()
	if w[0] != 2 {
		t.Errorf("baseline observation changed the weight: %v", w[0])
	}
}

func TestTrackerKillFoldsRange(t *testing.T) {
	tr := NewTracker(90, []float64{1, 1, 1})
	cur := tr.Partition()
	tr.Kill(1)
	next, changed := tr.Rebalance(cur, 0)
	if !changed {
		t.Fatal("death did not trigger a rebalance")
	}
	if next[1][1] != next[1][0] {
		t.Errorf("dead worker kept elements: %v", next[1])
	}
	total := (next[0][1] - next[0][0]) + (next[2][1] - next[2][0])
	if total != 90 {
		t.Errorf("survivors own %d of 90 elements", total)
	}
	if tr.Alive() != 2 {
		t.Errorf("Alive = %d, want 2", tr.Alive())
	}
}

func TestRebalanceHysteresis(t *testing.T) {
	tr := NewTracker(1000, []float64{1, 1})
	cur := tr.Partition()
	// Tiny drift: observations differing by under the hysteresis
	// threshold keep the current partition.
	now, w0, w1 := 0.0, 0.0, 0.0
	for i := 0; i < 5; i++ {
		now++
		w0 += 101
		w1 += 100
		tr.Observe(0, w0, now)
		tr.Observe(1, w1, now)
	}
	if _, changed := tr.Rebalance(cur, 0.05); changed {
		t.Error("sub-threshold drift triggered a rebalance")
	}
	// Large drift: must rebalance.
	for i := 0; i < 8; i++ {
		now++
		w0 += 400
		w1 += 100
		tr.Observe(0, w0, now)
		tr.Observe(1, w1, now)
	}
	next, changed := tr.Rebalance(cur, 0.05)
	if !changed {
		t.Fatal("4:1 drift did not trigger a rebalance")
	}
	if sz := next[0][1] - next[0][0]; sz <= 500 {
		t.Errorf("fast worker share did not grow: %d", sz)
	}
}

func TestObserveWindowDiscriminatesLatency(t *testing.T) {
	// Equal work per round, 4x latency difference — the full-sync
	// barrier regime where cumulative-counter observations carry no
	// signal but per-round completion windows do.
	tr := NewTracker(700, []float64{1, 1})
	for i := 0; i < 10; i++ {
		tr.ObserveWindow(0, 100, 0.25)
		tr.ObserveWindow(1, 100, 1.0)
	}
	w := tr.Weights()
	if r := w[0] / w[1]; r < 3.5 || r > 4.5 {
		t.Errorf("weight ratio = %v after 4:1 latency windows, want ~4", r)
	}
	before := tr.Weights()[0]
	tr.ObserveWindow(0, 100, 0) // zero window
	tr.ObserveWindow(0, -1, 1)  // negative work
	tr.ObserveWindow(9, 1, 1)   // out of range
	if after := tr.Weights()[0]; after != before {
		t.Errorf("bad windows changed the weight: %v -> %v", before, after)
	}
}

func TestObserveIgnoresBadWindows(t *testing.T) {
	tr := NewTracker(100, []float64{1})
	tr.Observe(0, 100, 1)
	before := tr.Weights()[0]
	tr.Observe(0, 90, 2)  // counter went backwards
	tr.Observe(0, 200, 1) // zero time delta (same stamp as baseline)
	if after := tr.Weights()[0]; after != before {
		t.Errorf("bad windows changed the weight: %v -> %v", before, after)
	}
	tr.Observe(-1, 5, 5) // out of range: no panic
	tr.Observe(9, 5, 5)
}

func TestReviveRestoresWorkerAndForcesRebalance(t *testing.T) {
	tr := NewTracker(100, []float64{1, 1, 1})
	cur := tr.Partition()
	tr.Kill(1)
	// The fold: the dead worker's range must be re-absorbed.
	cur, changed := tr.Rebalance(cur, 0)
	if !changed {
		t.Fatal("kill did not force a rebalance")
	}
	if cur[1][1] > cur[1][0] {
		t.Fatalf("dead worker kept elements: %v", cur)
	}
	if tr.Alive() != 2 {
		t.Fatalf("Alive = %d, want 2", tr.Alive())
	}

	// The respawn: a revived worker holds an empty range, which must
	// force the next rebalance to carve it a share again.
	tr.Revive(1, tr.MeanAliveWeight())
	if tr.Alive() != 3 {
		t.Fatalf("Alive after revive = %d, want 3", tr.Alive())
	}
	next, changed := tr.Rebalance(cur, 0)
	if !changed {
		t.Fatal("revive did not force a rebalance")
	}
	if next[1][1] <= next[1][0] {
		t.Fatalf("revived worker still starved: %v", next)
	}
	// The revived worker's baseline was reset: its first observation
	// only re-establishes it instead of producing a bogus rate.
	before := tr.Weights()[1]
	tr.Observe(1, 1e9, 100)
	if after := tr.Weights()[1]; after != before {
		t.Errorf("first post-revive observation moved the weight: %v -> %v", before, after)
	}

	tr.Revive(-1, 1) // out of range: no panic
	tr.Revive(9, 1)
}

func TestMeanAliveWeight(t *testing.T) {
	tr := NewTracker(100, []float64{2, 4, 6})
	if m := tr.MeanAliveWeight(); m != 4 {
		t.Errorf("MeanAliveWeight = %v, want 4", m)
	}
	tr.Kill(2)
	if m := tr.MeanAliveWeight(); m != 3 {
		t.Errorf("MeanAliveWeight after kill = %v, want 3", m)
	}
	tr.Kill(0)
	tr.Kill(1)
	if m := tr.MeanAliveWeight(); m != 1 {
		t.Errorf("MeanAliveWeight with no live workers = %v, want the neutral 1", m)
	}
}
