package pts

import (
	"fmt"
	"os"

	"pts/internal/flowshop"
	"pts/internal/rng"
	"pts/internal/schedinst"
)

// FlowShopProblem is the permutation flow shop scheduling problem —
// sequence n jobs through m machines in one shared order minimizing the
// makespan — as a built-in workload over the same engine the placement
// and QAP searches run on. Unlike those two, its swap deltas are not
// O(1): each candidate recomputes the critical-path section the swap
// disturbs (O(m · span) after one O(nm) cache rebuild per batch), which
// is exactly the non-constant-cost Evaluator shape the engine's batch
// boundary was designed to absorb.
type FlowShopProblem struct {
	ins *schedinst.FlowShop
}

// FlowShopBenchmark returns a named embedded benchmark instance
// (Taillard's ta001). FlowShopInstances lists the names.
func FlowShopBenchmark(name string) (*FlowShopProblem, error) {
	ins, err := schedinst.FlowShopByName(name)
	if err != nil {
		return nil, err
	}
	return &FlowShopProblem{ins: ins}, nil
}

// FlowShopInstances lists the embedded flow shop benchmark names.
func FlowShopInstances() []string { return schedinst.FlowShopNames() }

// FlowShopFromFile parses a Taillard-format instance file.
func FlowShopFromFile(path string) (*FlowShopProblem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ins, err := schedinst.ParseTaillard(stemOf(path), f)
	if err != nil {
		return nil, err
	}
	return &FlowShopProblem{ins: ins}, nil
}

// RandomFlowShop generates a random jobs × machines instance with
// durations in [1, 100), deterministic in seed.
func RandomFlowShop(jobs, machines int, seed uint64) *FlowShopProblem {
	return &FlowShopProblem{ins: flowshop.Random(jobs, machines, seed)}
}

// NewFlowShop builds an instance from an explicit processing-time
// matrix: proc[i][j] is the time of job j on machine i.
func NewFlowShop(name string, proc [][]int) (*FlowShopProblem, error) {
	ins, err := flowshop.New(name, proc)
	if err != nil {
		return nil, err
	}
	return &FlowShopProblem{ins: ins}, nil
}

// Name identifies the instance.
func (p *FlowShopProblem) Name() string { return "flowshop-" + p.ins.Name }

// Size returns the number of jobs (solutions are job sequences).
func (p *FlowShopProblem) Size() int32 { return int32(p.ins.Jobs) }

// Describe summarizes the instance dimensions and published bounds.
func (p *FlowShopProblem) Describe() string {
	s := fmt.Sprintf("%d jobs x %d machines", p.ins.Jobs, p.ins.Machines)
	if p.ins.Upper > 0 {
		s += fmt.Sprintf(", published makespan bounds [%d, %d]", p.ins.Lower, p.ins.Upper)
	}
	return s
}

// Instance exposes the parsed instance data.
func (p *FlowShopProblem) Instance() *schedinst.FlowShop { return p.ins }

// Initial derives the run's shared initial sequence from seed.
func (p *FlowShopProblem) Initial(seed uint64) (State, error) {
	return flowshop.NewState(p.ins, rng.Derive(seed, "pts.flowshop.initial")), nil
}

// NewState builds an independent sequence state positioned at snap.
func (p *FlowShopProblem) NewState(snap []int32) (State, error) {
	return flowshop.NewStateAt(p.ins, snap)
}

// Details recomputes the exact makespan of a solution from scratch and
// returns a FlowShopDetails.
func (p *FlowShopProblem) Details(best []int32) (any, error) {
	ms, err := flowshop.Makespan(p.ins, best)
	if err != nil {
		return nil, err
	}
	return FlowShopDetails{
		Makespan:   ms,
		LowerBound: flowshop.LowerBound(p.ins),
		Optimum:    p.ins.Upper,
	}, nil
}

// Makespan evaluates a job sequence exactly with the from-scratch DP.
func (p *FlowShopProblem) Makespan(seq []int32) (int, error) {
	return flowshop.Makespan(p.ins, seq)
}

// BruteForceOptimum exhaustively finds the optimal makespan; limited to
// tiny instances (jobs <= 8), the test oracle.
func (p *FlowShopProblem) BruteForceOptimum() int { return flowshop.BruteForceOptimum(p.ins) }

// FlowShopDetails is the exact scoring of a flow shop solution.
type FlowShopDetails struct {
	// Makespan is the solution's makespan recomputed from scratch.
	Makespan int
	// LowerBound is the machine-load lower bound of the instance.
	LowerBound int
	// Optimum is the published optimal (or best-known upper-bound)
	// makespan, 0 when unknown.
	Optimum int
}

// stemOf strips the directory and extension from an instance file path,
// the conventional instance name.
func stemOf(path string) string {
	base := path
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '/' || base[i] == os.PathSeparator {
			base = base[i+1:]
			break
		}
	}
	for i := len(base) - 1; i > 0; i-- {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}
