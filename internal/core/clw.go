package core

import (
	"fmt"
	"math/rand"

	"pts/internal/pvm"
	"pts/internal/rng"
	"pts/internal/tabu"
)

// clwRun is the candidate-list worker body (paper Fig. 4). It owns a
// private copy of the solution, kept in lockstep with its parent TSW via
// TagSync/TagNewState, and produces one compound move per TagSearch.
// The first element of every trial swap comes from the worker's range —
// the probabilistic domain decomposition of §4.1 — and the second from
// the whole element space.
//
// The parent is whoever sent the last TagInit: at spawn that is the
// TSW that created the CLW, a replacement CLW is seeded by the TSW
// that requested it, and a CLW surviving its TSW's death is
// re-parented by the resurrected TSW's TagInit mid-run. A TagStop
// arriving before any TagInit retires a surplus replacement that was
// never seeded — it exits without a stats report, since no parent
// ever accounted for it.
func clwRun(env pvm.Env, problem Problem, cfg Config, tune Tuning) {
	first := env.Recv(TagInit, TagStop)
	if first.Tag == TagStop {
		return
	}
	init := first.Data.(initMsg)
	parent := first.From
	prob := mustState(env, problem, init.Perm)
	configureEval(prob, cfg, true) // CLWs batch-evaluate: relaxed mode + pool apply here
	defer tabu.Close(prob)         // release the evaluation pool on any exit
	r := workerRand(env, cfg, "clw")
	params := tabu.CompoundParams{
		Trials:  tune.Trials,
		Depth:   tune.Depth,
		RangeLo: init.RangeLo,
		RangeHi: init.RangeHi,
	}
	if init.Trials > 0 {
		// Adaptive scheduling: the per-step trial budget scales with
		// this worker's range share instead of the tuned constant.
		params.Trials = init.Trials
	}
	stepWork := float64(params.Trials) * cfg.WorkPerTrial
	staWork := workSTA(cfg, prob.Size())

	var stats WorkerStats
	var tentative tabu.CompoundMove // applied locally, awaiting TagSync
	var batch tabu.BatchScratch     // candidate-batch buffers reused across TagSearches

	for {
		m := env.Recv(TagSearch, TagSync, TagNewState, TagStop, TagReportNow, TagRebalance, TagInit)
		switch m.Tag {
		case TagSearch:
			forced := false
			move := tabu.BuildCompoundBatch(prob, r, params, &batch, func() bool {
				env.Work(stepWork)
				stats.TrialsCharged += int64(params.Trials)
				if _, ok := env.TryRecv(TagReportNow); ok {
					forced = true
					return true
				}
				return env.Cancelled()
			})
			tentative = move
			stats.CandidatesBuilt++
			if forced {
				stats.ForcedReports++
			}
			env.Send(parent, TagCandidate, candMsg{
				Move: move, Forced: forced,
				CumTrials: stats.TrialsCharged, At: env.Now(),
			})

		case TagRebalance:
			// Only ever arrives at the resync barrier (followed by the
			// TagNewState carrying the synchronized solution), so no
			// candidate built against the old range is in flight.
			rb := m.Data.(rebalanceMsg)
			params.RangeLo, params.RangeHi = rb.RangeLo, rb.RangeHi
			if rb.Trials > 0 {
				params.Trials = rb.Trials
				stepWork = float64(params.Trials) * cfg.WorkPerTrial
			}

		case TagSync:
			chosen := m.Data.(syncMsg).Chosen
			tentative.Undo(prob)
			chosen.Apply(prob)
			tentative = tabu.CompoundMove{}
			env.Work(float64(len(chosen.Swaps)) * cfg.WorkPerTrial)

		case TagNewState:
			sm := m.Data.(stateMsg)
			if err := prob.Restore(sm.Perm); err != nil {
				panic(fmt.Sprintf("core: clw %s: %v", env.Name(), err))
			}
			if sm.HasReseed {
				// Durable runs: the barrier reseed makes this worker's
				// stream a function of the TSW's persisted state, so a run
				// resumed from a snapshot draws the same numbers as the
				// uninterrupted one.
				r = rng.New(sm.Reseed)
			}
			tentative = tabu.CompoundMove{}
			env.Work(staWork)

		case TagInit:
			// Mid-run re-initialization: a resurrected TSW adopting this
			// survivor. Adopt it back as the parent, take its solution and
			// range, and drop whatever was tentative against the old world.
			in := m.Data.(initMsg)
			if err := prob.Restore(in.Perm); err != nil {
				panic(fmt.Sprintf("core: clw %s: %v", env.Name(), err))
			}
			parent = m.From
			params.RangeLo, params.RangeHi = in.RangeLo, in.RangeHi
			if in.Trials > 0 {
				params.Trials = in.Trials
				stepWork = float64(params.Trials) * cfg.WorkPerTrial
			}
			if in.HasReseed {
				r = rng.New(in.Reseed)
			}
			tentative = tabu.CompoundMove{}
			env.Work(staWork)

		case TagReportNow:
			// Stale force (our candidate was already in flight): ignore.

		case TagStop:
			env.Send(parent, TagStats, stats)
			return
		}
	}
}

// workerRand returns the worker's random stream: independent per task
// by default, or shared among siblings of the same class when
// Config.CorrelatedWorkers emulates identically-seeded processes.
func workerRand(env pvm.Env, cfg Config, class string) *rand.Rand {
	if cfg.CorrelatedWorkers {
		return rng.NewChild(cfg.Seed, "core.correlated", class)
	}
	return env.Rand()
}

// mustState builds a worker state over an imported solution; failures
// here are protocol bugs, not input errors.
func mustState(env pvm.Env, problem Problem, perm []int32) State {
	st, err := problem.NewState(perm)
	if err != nil {
		panic(fmt.Sprintf("core: %s: state: %v", env.Name(), err))
	}
	return st
}
