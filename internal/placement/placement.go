package placement

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"pts/internal/netlist"
)

// Placement assigns every cell of a netlist to a distinct slot of a
// layout and maintains, incrementally and exactly:
//
//   - each net's bounding box (with runner-up boundary statistics) and
//     the total HPWL,
//   - each row's occupied width plus the top-two widest rows.
//
// Trial evaluation (SwapDeltaWeighted, MaxRowWidthAfterSwap and their
// move counterparts) is O(1) amortized per affected net and allocates
// nothing. Placement is not safe for concurrent use; parallel workers
// clone it.
type Placement struct {
	nl *netlist.Netlist
	L  Layout

	pos  []Pos            // cell -> slot position
	slot []netlist.CellID // linear slot index -> cell (None if empty)

	// Per-net counted bounding boxes, in exactly one of two layouts:
	// boxes16 (the compact int16 layout, chosen when compactFits(L) so
	// benchmark-scale box arrays stay L1-resident) or boxes (the wide
	// int32 fallback for oversized layouts). The unused slice is nil;
	// both layouts produce bit-identical deltas (see box.go).
	boxes   []netBox
	boxes16 []netBoxT[int16]

	hpwl float64 // total half-perimeter wirelength

	rowWidth []int // per-row sum of cell widths

	// Top-two row tracking: the widest and second-widest rows (distinct
	// rows; ties broken by first occurrence). top2Row is -1 on
	// single-row layouts. This answers MaxRowWidthAfterSwap/AfterMove in
	// O(1) — see topExcluding for why two entries suffice.
	top1W, top2W     int
	top1Row, top2Row int32

	// cellWidth is the immutable per-cell width in SoA form (the Cell
	// structs are ~48 bytes each with a Name header, so walking widths
	// through them drags whole cache lines per cell); built once in New
	// and shared by clones like the netlist itself.
	cellWidth []int32

	// relaxed selects the reassociated batch-accumulation kernel for
	// SwapObjectivesBatch (see batch.go); scalar kernels are unaffected.
	relaxed bool

	// Scratch: rescan queues nets whose box needs a full recompute after
	// a commit, importSeen backs Import validation, batchKeys holds the
	// batch evaluator's candidate sort keys, batchZeroW the all-zero
	// weight vector substituted for a nil w in batch evaluation.
	rescan     []netlist.NetID
	importSeen []bool
	batchKeys  []int64
	batchZeroW []float64
}

// New creates a placement with cells assigned to slots in index order
// (cell i in slot i). Fails if the layout has fewer slots than cells.
func New(nl *netlist.Netlist, l Layout) (*Placement, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.Slots() < nl.NumCells() {
		return nil, fmt.Errorf("placement: %d slots < %d cells", l.Slots(), nl.NumCells())
	}
	p := &Placement{
		nl:        nl,
		L:         l,
		pos:       make([]Pos, nl.NumCells()),
		slot:      make([]netlist.CellID, l.Slots()),
		rowWidth:  make([]int, l.Rows),
		cellWidth: make([]int32, nl.NumCells()),
	}
	if compactFits(l) {
		p.boxes16 = make([]netBoxT[int16], nl.NumNets())
	} else {
		p.boxes = make([]netBox, nl.NumNets())
	}
	for c := range p.cellWidth {
		p.cellWidth[c] = int32(nl.Cells[c].Width)
	}
	for i := range p.slot {
		p.slot[i] = netlist.None
	}
	for c := 0; c < nl.NumCells(); c++ {
		p.placeInitial(netlist.CellID(c), l.SlotPos(c))
	}
	p.recomputeAll()
	return p, nil
}

// placeInitial puts a cell into an empty slot without cost bookkeeping;
// used only during construction and import.
func (p *Placement) placeInitial(c netlist.CellID, at Pos) {
	p.pos[c] = at
	p.slot[p.L.SlotIndex(at)] = c
}

// Netlist returns the placed netlist.
func (p *Placement) Netlist() *netlist.Netlist { return p.nl }

// Layout returns the slot grid.
func (p *Placement) Layout() Layout { return p.L }

// PosOf returns the slot position of cell c.
func (p *Placement) PosOf(c netlist.CellID) Pos { return p.pos[c] }

// CellAt returns the cell in the slot at pos, or netlist.None.
func (p *Placement) CellAt(at Pos) netlist.CellID { return p.slot[p.L.SlotIndex(at)] }

// HPWL returns the maintained total half-perimeter wirelength.
func (p *Placement) HPWL() float64 { return p.hpwl }

// NetHPWL returns the maintained half-perimeter of one net.
func (p *Placement) NetHPWL(n netlist.NetID) float64 {
	b := p.boxAt(n)
	return boxLength(&b)
}

// MaxRowWidth returns the width of the widest row, the area objective.
func (p *Placement) MaxRowWidth() int { return p.top1W }

// RowWidth returns the occupied width of one row.
func (p *Placement) RowWidth(row int) int { return p.rowWidth[row] }

// Compact reports whether this placement stores its net boxes in the
// L1-compact int16 layout (chosen automatically when the layout's
// dimensions fit; see box.go).
func (p *Placement) Compact() bool { return p.boxes16 != nil }

// SetRelaxedAccumulation selects the reassociated batch-accumulation
// kernel for SwapObjectivesBatch: the weighted-delta sum is accumulated
// in independent lanes instead of the strictly ascending-net-id serial
// order, so results may differ from the scalar path in final-ulp
// rounding (deterministically — the relaxed order is fixed too). Off
// (the default), batch evaluation is bit-identical to the scalar
// kernels. Scalar trial and commit paths are unaffected either way.
func (p *Placement) SetRelaxedAccumulation(on bool) { p.relaxed = on }

// RelaxedAccumulation reports the current batch-accumulation mode.
func (p *Placement) RelaxedAccumulation() bool { return p.relaxed }

// boxAt returns net n's box in the wide currency regardless of layout;
// cold paths (per-net queries, invariant checks, density maps) use it.
func (p *Placement) boxAt(n netlist.NetID) netBox {
	if p.boxes16 != nil {
		return widenBox(p.boxes16[n])
	}
	return p.boxes[n]
}

// setBox stores a freshly scanned wide box into the active layout.
func (p *Placement) setBox(n netlist.NetID, b netBox) {
	if p.boxes16 != nil {
		p.boxes16[n] = narrowBox(b)
	} else {
		p.boxes[n] = b
	}
}

// forceWideBoxes rebuilds the box store in the wide int32 layout even
// when the compact one fits — the test hook that lets the compaction
// boundary be fuzzed by running both layouts on one placement.
func (p *Placement) forceWideBoxes() {
	if p.boxes16 == nil {
		return
	}
	p.boxes = make([]netBox, len(p.boxes16))
	for n, b := range p.boxes16 {
		p.boxes[n] = widenBox(b)
	}
	p.boxes16 = nil
}

// recomputeAll rebuilds every net box, the total HPWL, the row widths
// and the top-two cache from scratch. O(pins + rows).
func (p *Placement) recomputeAll() {
	p.hpwl = 0
	for n := 0; n < p.nl.NumNets(); n++ {
		b := p.scanBox(netlist.NetID(n))
		p.setBox(netlist.NetID(n), b)
		p.hpwl += boxLength(&b)
	}
	for r := range p.rowWidth {
		p.rowWidth[r] = 0
	}
	for c := 0; c < p.nl.NumCells(); c++ {
		p.rowWidth[p.pos[c].Row] += p.nl.Cells[c].Width
	}
	p.refreshTopRows()
}

// scanBox computes net n's bounding box with runner-up statistics from
// the current positions by scanning its pins, in the wide currency
// (setBox narrows it when the compact layout is active). O(degree);
// recomputeAll and the commit fallback use it. The running
// two-smallest/two-largest updates are phrased as min/max pairs so they
// compile to conditional moves instead of data-dependent branches.
func (p *Placement) scanBox(n netlist.NetID) netBox {
	pins := p.nl.Pins(n)
	q := p.pos[pins[0]]
	b := netBox{
		minX: q.Col, minX2: math.MaxInt32, maxX2: math.MinInt32, maxX: q.Col,
		minY: q.Row, minY2: math.MaxInt32, maxY2: math.MinInt32, maxY: q.Row,
	}
	for _, c := range pins[1:] {
		q := p.pos[c]
		b.minX2 = min(b.minX2, max(b.minX, q.Col))
		b.minX = min(b.minX, q.Col)
		b.maxX2 = max(b.maxX2, min(b.maxX, q.Col))
		b.maxX = max(b.maxX, q.Col)
		b.minY2 = min(b.minY2, max(b.minY, q.Row))
		b.minY = min(b.minY, q.Row)
		b.maxY2 = max(b.maxY2, min(b.maxY, q.Row))
		b.maxY = max(b.maxY, q.Row)
	}
	return b
}

// SwapDeltaWeighted returns the total HPWL change and the w-weighted
// HPWL change (sum of w[n] × net delta) if cells a and b exchanged
// positions, without modifying the placement and without allocating.
// Pass w == nil to skip the weighted sum. O(1) per affected net, no
// rescans. Shared nets — those on which both cells sit — are detected
// by a merge walk over the two sorted CSR net lists and skipped
// outright: exchanging two of a net's pins leaves its pin multiset, and
// hence its box, unchanged.
func (p *Placement) SwapDeltaWeighted(a, b netlist.CellID, w []float64) (dLen, dWeighted float64) {
	if p.boxes16 != nil {
		return swapDeltaWeighted(p, p.boxes16, a, b, w)
	}
	return swapDeltaWeighted(p, p.boxes, a, b, w)
}

// swapDeltaWeighted is SwapDeltaWeighted's generic body over one box
// layout; the accumulation order (globally ascending net id, serial) is
// identical in both instantiations. Like the batch kernels, the per-net
// delta is trialDelta's arithmetic written out in the loop (axisExtent
// inlines where the composed trialDelta would cost a call per net), with
// the positions converted to the box width C once.
func swapDeltaWeighted[C coord](p *Placement, boxes []netBoxT[C], a, b netlist.CellID, w []float64) (dLen, dWeighted float64) {
	pa, pb := p.pos[a], p.pos[b]
	if pa == pb {
		return 0, 0
	}
	paCol, paRow := C(pa.Col), C(pa.Row)
	pbCol, pbRow := C(pb.Col), C(pb.Row)
	an, bn := p.nl.CellNets(a), p.nl.CellNets(b)
	var di int32
	i, j := 0, 0
	for i < len(an) && j < len(bn) {
		switch na, nb := an[i], bn[j]; {
		case na == nb: // shared net: box unchanged
			i++
			j++
		case na < nb:
			bx := &boxes[na]
			d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, paCol, pbCol)-(bx.maxX-bx.minX)) +
				int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, paRow, pbRow)-(bx.maxY-bx.minY))
			if d != 0 {
				di += d
				if w != nil {
					dWeighted += w[na] * float64(d)
				}
			}
			i++
		default:
			bx := &boxes[nb]
			d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, pbCol, paCol)-(bx.maxX-bx.minX)) +
				int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, pbRow, paRow)-(bx.maxY-bx.minY))
			if d != 0 {
				di += d
				if w != nil {
					dWeighted += w[nb] * float64(d)
				}
			}
			j++
		}
	}
	for ; i < len(an); i++ {
		bx := &boxes[an[i]]
		d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, paCol, pbCol)-(bx.maxX-bx.minX)) +
			int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, paRow, pbRow)-(bx.maxY-bx.minY))
		if d != 0 {
			di += d
			if w != nil {
				dWeighted += w[an[i]] * float64(d)
			}
		}
	}
	for ; j < len(bn); j++ {
		bx := &boxes[bn[j]]
		d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, pbCol, paCol)-(bx.maxX-bx.minX)) +
			int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, pbRow, paRow)-(bx.maxY-bx.minY))
		if d != 0 {
			di += d
			if w != nil {
				dWeighted += w[bn[j]] * float64(d)
			}
		}
	}
	return float64(di), dWeighted
}

// VisitSwapDeltas calls fn once for every net whose bounding box changes
// when cells a and b exchange positions, passing the net and its old and
// new half-perimeter lengths. It does not modify the placement. Prefer
// SwapDeltaWeighted in hot paths: it computes both objective deltas in
// the same pass with no callback.
func (p *Placement) VisitSwapDeltas(a, b netlist.CellID, fn func(n netlist.NetID, oldLen, newLen float64)) {
	pa, pb := p.pos[a], p.pos[b]
	if pa == pb {
		return
	}
	visit := func(n netlist.NetID, from, to Pos) {
		b := p.boxAt(n)
		if d := trialDelta(&b, from, to); d != 0 {
			old := boxLength(&b)
			fn(n, old, old+float64(d))
		}
	}
	an, bn := p.nl.CellNets(a), p.nl.CellNets(b)
	i, j := 0, 0
	for i < len(an) && j < len(bn) {
		switch na, nb := an[i], bn[j]; {
		case na == nb: // shared net: box unchanged
			i++
			j++
		case na < nb:
			visit(na, pa, pb)
			i++
		default:
			visit(nb, pb, pa)
			j++
		}
	}
	for ; i < len(an); i++ {
		visit(an[i], pa, pb)
	}
	for ; j < len(bn); j++ {
		visit(bn[j], pb, pa)
	}
}

// HPWLDeltaSwap returns the total HPWL change if cells a and b exchanged
// positions, without modifying the placement.
func (p *Placement) HPWLDeltaSwap(a, b netlist.CellID) float64 {
	d, _ := p.SwapDeltaWeighted(a, b, nil)
	return d
}

// topExcluding returns the widest row outside {ra, rb}, rows whose
// width a trial is about to change. When both top-two rows are the
// changed rows themselves, 0 is returned; that is safe for every caller
// because the changed rows then dominate: a swap preserves their summed
// width, so max(new widths) ≥ (top1+top2)/2 ≥ top2 ≥ any third row, and
// a move's gaining row starts at ≥ top2 and only grows.
func (p *Placement) topExcluding(ra, rb int32) int {
	if p.top1Row != ra && p.top1Row != rb {
		return p.top1W
	}
	if p.top2Row >= 0 && p.top2Row != ra && p.top2Row != rb {
		return p.top2W
	}
	return 0
}

// MaxRowWidthAfterSwap returns the area objective's value if cells a and
// b exchanged positions, without modifying the placement. O(1) via the
// top-two row cache.
func (p *Placement) MaxRowWidthAfterSwap(a, b netlist.CellID) int {
	ra, rb := p.pos[a].Row, p.pos[b].Row
	if ra == rb {
		return p.top1W
	}
	wa, wb := p.nl.Cells[a].Width, p.nl.Cells[b].Width
	if wa == wb {
		return p.top1W
	}
	na := p.rowWidth[ra] + wb - wa
	nb := p.rowWidth[rb] + wa - wb
	m := p.topExcluding(ra, rb)
	if na > m {
		m = na
	}
	if nb > m {
		m = nb
	}
	return m
}

// updateRowWidth applies a width delta to one row and maintains the
// top-two cache, falling back to an O(rows) rescan only when a top row
// shrinks below the known runner-up.
func (p *Placement) updateRowWidth(row int32, delta int) {
	w := p.rowWidth[row] + delta
	p.rowWidth[row] = w
	switch {
	case row == p.top1Row:
		if w >= p.top2W {
			p.top1W = w
		} else {
			p.refreshTopRows()
		}
	case row == p.top2Row:
		switch {
		case w > p.top1W:
			p.top2W, p.top2Row = p.top1W, p.top1Row
			p.top1W, p.top1Row = w, row
		case delta > 0:
			p.top2W = w
		default:
			p.refreshTopRows()
		}
	case w > p.top1W:
		p.top2W, p.top2Row = p.top1W, p.top1Row
		p.top1W, p.top1Row = w, row
	case w > p.top2W:
		p.top2W, p.top2Row = w, row
	}
}

// refreshTopRows rebuilds the top-two row cache from scratch. O(rows).
func (p *Placement) refreshTopRows() {
	t1w, t2w := -1, -1
	t1r, t2r := int32(-1), int32(-1)
	for r, w := range p.rowWidth {
		if w > t1w {
			t2w, t2r = t1w, t1r
			t1w, t1r = w, int32(r)
		} else if w > t2w {
			t2w, t2r = w, int32(r)
		}
	}
	p.top1W, p.top1Row = t1w, t1r
	p.top2W, p.top2Row = t2w, t2r
}

// commitPinMove updates net n's box for the committed single-pin move
// from→to. The HPWL delta is always exact and O(1) via trialDelta; the
// box statistics update in place when the moved pin sits strictly
// between the runner-up statistics, and otherwise the net is queued on
// p.rescan for a stats rebuild after the caller updates the position
// arrays. Trials never rescan (see trialDelta); this amortized
// fallback runs only on the rare committed moves.
func commitPinMove[C coord](p *Placement, boxes []netBoxT[C], n netlist.NetID, from, to Pos) {
	b := &boxes[n]
	p.hpwl += float64(trialDelta(b, from, to))
	if len(p.nl.Pins(n)) <= 3 {
		// Every pin of a 2- or 3-pin net is one of the four tracked
		// statistics on each axis, so the O(1) update can never apply.
		p.rescan = append(p.rescan, n)
		return
	}
	loX, loX2, hiX2, hiX, okX := commitAxis(b.minX, b.minX2, b.maxX2, b.maxX, C(from.Col), C(to.Col))
	if okX {
		loY, loY2, hiY2, hiY, okY := commitAxis(b.minY, b.minY2, b.maxY2, b.maxY, C(from.Row), C(to.Row))
		if okY {
			*b = netBoxT[C]{
				minX: loX, minX2: loX2, maxX2: hiX2, maxX: hiX,
				minY: loY, minY2: loY2, maxY2: hiY2, maxY: hiY,
			}
			return
		}
	}
	p.rescan = append(p.rescan, n)
}

// flushRescans rebuilds the queued nets' box statistics from the (now
// current) positions; the HPWL was already adjusted exactly at commit
// time.
func (p *Placement) flushRescans() {
	for _, n := range p.rescan {
		p.setBox(n, p.scanBox(n))
	}
	p.rescan = p.rescan[:0]
}

// SwapCells exchanges the positions of two cells and updates all
// maintained quantities incrementally. Swapping a cell with itself is a
// no-op.
func (p *Placement) SwapCells(a, b netlist.CellID) {
	if a == b {
		return
	}
	pa, pb := p.pos[a], p.pos[b]

	// Net boxes and total HPWL; nets carrying both cells keep their box
	// (merge walk over the sorted CSR net lists, as in SwapDeltaWeighted).
	if p.boxes16 != nil {
		swapCommitBoxes(p, p.boxes16, a, b, pa, pb)
	} else {
		swapCommitBoxes(p, p.boxes, a, b, pa, pb)
	}

	// Row widths and the top-two cache.
	if pa.Row != pb.Row {
		wa, wb := p.nl.Cells[a].Width, p.nl.Cells[b].Width
		if wa != wb {
			p.updateRowWidth(pa.Row, wb-wa)
			p.updateRowWidth(pb.Row, wa-wb)
		}
	}

	// Positions, then deferred box rescans against the new positions.
	p.pos[a], p.pos[b] = pb, pa
	p.slot[p.L.SlotIndex(pa)] = b
	p.slot[p.L.SlotIndex(pb)] = a
	p.flushRescans()
}

// swapCommitBoxes commits the per-net box updates of a swap over one
// box layout: the same merge walk as swapDeltaWeighted, with
// commitPinMove at every non-shared net.
func swapCommitBoxes[C coord](p *Placement, boxes []netBoxT[C], a, b netlist.CellID, pa, pb Pos) {
	an, bn := p.nl.CellNets(a), p.nl.CellNets(b)
	i, j := 0, 0
	for i < len(an) && j < len(bn) {
		switch na, nb := an[i], bn[j]; {
		case na == nb:
			i++
			j++
		case na < nb:
			commitPinMove(p, boxes, na, pa, pb)
			i++
		default:
			commitPinMove(p, boxes, nb, pb, pa)
			j++
		}
	}
	for ; i < len(an); i++ {
		commitPinMove(p, boxes, an[i], pa, pb)
	}
	for ; j < len(bn); j++ {
		commitPinMove(p, boxes, bn[j], pb, pa)
	}
}

// Randomize shuffles all cells across all slots using r.
func (p *Placement) Randomize(r *rand.Rand) {
	n := p.nl.NumCells()
	slots := p.L.Slots()
	perm := r.Perm(slots)
	for i := range p.slot {
		p.slot[i] = netlist.None
	}
	for c := 0; c < n; c++ {
		p.pos[netlist.CellID(c)] = p.L.SlotPos(perm[c])
		p.slot[perm[c]] = netlist.CellID(c)
	}
	p.recomputeAll()
}

// Export returns the placement as a permutation: element c is the linear
// slot index of cell c. The result is independent of p's internals and
// safe to send between workers.
func (p *Placement) Export() []int32 {
	return p.ExportInto(nil)
}

// ExportInto writes the permutation into dst (reallocating only when it
// is too small) and returns it; the allocation-free variant of Export
// for callers that reuse a buffer across reports.
func (p *Placement) ExportInto(dst []int32) []int32 {
	n := p.nl.NumCells()
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	for c := range dst {
		dst[c] = int32(p.L.SlotIndex(p.pos[c]))
	}
	return dst
}

// Import replaces the assignment with the given exported permutation and
// rebuilds the maintained quantities. It validates lengths, bounds and
// slot uniqueness.
func (p *Placement) Import(perm []int32) error {
	if len(perm) != p.nl.NumCells() {
		return fmt.Errorf("placement: import length %d != %d cells", len(perm), p.nl.NumCells())
	}
	if p.importSeen == nil {
		p.importSeen = make([]bool, p.L.Slots())
	}
	seen := p.importSeen
	for i := range seen {
		seen[i] = false
	}
	for c, s := range perm {
		if s < 0 || int(s) >= p.L.Slots() {
			return fmt.Errorf("placement: import: cell %d slot %d out of range", c, s)
		}
		if seen[s] {
			return fmt.Errorf("placement: import: slot %d assigned twice", s)
		}
		seen[s] = true
	}
	for i := range p.slot {
		p.slot[i] = netlist.None
	}
	for c, s := range perm {
		p.pos[c] = p.L.SlotPos(int(s))
		p.slot[s] = netlist.CellID(c)
	}
	p.recomputeAll()
	return nil
}

// Clone returns an independent deep copy sharing only the immutable
// netlist.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		nl:        p.nl,
		L:         p.L,
		pos:       append([]Pos(nil), p.pos...),
		slot:      append([]netlist.CellID(nil), p.slot...),
		boxes:     append([]netBox(nil), p.boxes...),
		boxes16:   append([]netBoxT[int16](nil), p.boxes16...),
		hpwl:      p.hpwl,
		rowWidth:  append([]int(nil), p.rowWidth...),
		top1W:     p.top1W,
		top2W:     p.top2W,
		top1Row:   p.top1Row,
		top2Row:   p.top2Row,
		cellWidth: p.cellWidth, // immutable, shared like the netlist
		relaxed:   p.relaxed,
	}
	return q
}

// ASCII renders small placements as a grid of cell names for examples
// and debugging; layouts wider than maxCols columns render as a summary
// line instead.
func (p *Placement) ASCII(maxCols int) string {
	if p.L.Cols > maxCols {
		return fmt.Sprintf("[%dx%d layout, hpwl=%.0f, maxRowWidth=%d]",
			p.L.Rows, p.L.Cols, p.hpwl, p.top1W)
	}
	var sb strings.Builder
	for r := 0; r < p.L.Rows; r++ {
		for c := 0; c < p.L.Cols; c++ {
			id := p.slot[r*p.L.Cols+c]
			if id == netlist.None {
				sb.WriteString(fmt.Sprintf("%-8s", "."))
			} else {
				sb.WriteString(fmt.Sprintf("%-8s", p.nl.Cells[id].Name))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
