package pts

import (
	"context"
	"hash/fnv"
	"math"
	"testing"
)

// Golden reproduction tests: fixed-seed static runs must reproduce these
// exact costs and solutions, captured before the batched hot path
// landed. They pin the determinism contract of the candidate-batch
// kernels — batch evaluation, candidate generation order and argmin
// tie-breaking must stay bit-identical to the scalar reference — so any
// change that perturbs the search trajectory, however slightly, fails
// loudly here rather than silently shifting results.

// goldenHash is FNV-64a over the little-endian 4-byte encoding of each
// element of the best permutation.
func goldenHash(p []int32) uint64 {
	h := fnv.New64a()
	for _, v := range p {
		var b [4]byte
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		h.Write(b[:])
	}
	return h.Sum64()
}

func TestGoldenStaticRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds each")
	}
	opts := []Option{
		WithWorkers(3, 2),
		WithIterations(6, 25),
		WithTabu(10, 6, 3),
		WithSeed(42),
		WithCluster(Homogeneous(12, 1)),
	}
	for _, tc := range []struct {
		name          string
		best, initial float64
		permhash      uint64
	}{
		{"highway", 0.11204932489085495, 0.68373015873015874, 0xef4ba1a56e83558a},
		{"c532", 0.28813402176124203, 0.68373015873015885, 0x5cc29b37ae76080f},
		{"qap48", 5346999.319667737, 5848843.7973522879, 0x75590f415773e95},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var prob Problem
			if tc.name == "qap48" {
				prob = RandomQAP(48, 5)
			} else {
				var err error
				prob, err = PlacementBenchmark(tc.name)
				if err != nil {
					t.Fatal(err)
				}
			}
			res, err := Solve(context.Background(), prob, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(res.BestCost) != math.Float64bits(tc.best) {
				t.Errorf("BestCost = %.17g, golden %.17g (bit mismatch)", res.BestCost, tc.best)
			}
			if math.Float64bits(res.InitialCost) != math.Float64bits(tc.initial) {
				t.Errorf("InitialCost = %.17g, golden %.17g (bit mismatch)", res.InitialCost, tc.initial)
			}
			if h := goldenHash(res.Best); h != tc.permhash {
				t.Errorf("permhash = %#x, golden %#x", h, tc.permhash)
			}
		})
	}
}
