package pts

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/pvm/nettrans"
	"pts/internal/serve"
)

// ServerOptions configures ListenServer. The zero value is a working
// local daemon: loopback fleet on an OS-picked port, the default queue
// depth, no logging, and no persistence.
type ServerOptions struct {
	// FleetAddr is the TCP address worker daemons dial. Zero value
	// "127.0.0.1:0" accepts loopback workers on an OS-picked port; use
	// ":0" to accept workers from other hosts, or a fixed
	// ":9017"-style address.
	FleetAddr string
	// QueueDepth bounds how many jobs may wait behind the running ones;
	// submissions beyond it are refused with queue_full. Zero value
	// means serve.DefaultQueueDepth.
	QueueDepth int
	// Store, when non-nil, makes the daemon crash-only: every job's
	// spec, lifecycle and result is journaled under "jobs/<id>", each
	// running job's solver snapshots under "runs/<id>", and a restarted
	// ListenServer over the same store re-serves completed results,
	// re-admits queued jobs, and resumes interrupted runs from their
	// last synchronization barrier. Zero value (nil) keeps all job
	// state in memory — a restart starts empty.
	Store Store
	// Logf, when non-nil, receives fleet and scheduler lifecycle lines.
	// Zero value discards them.
	Logf func(format string, args ...any)
}

// Server is the solver-as-a-service core: one long-lived worker fleet
// multiplexing many concurrent solver jobs, fronted by an HTTP API.
// Workers join the fleet address exactly like single-run distributed
// workers (Worker or `pts -worker`) — a nil problem makes them serve
// any built-in workload — and each admitted job leases its own disjoint
// subset of them, so no worker ever hosts tasks of two jobs at once.
//
// Server owns the fleet listener and the job scheduler; the caller owns
// the HTTP listener (serve Handler with net/http — cmd/ptsd does).
type Server struct {
	master *nettrans.Master
	sched  *serve.Scheduler
	api    *serve.API
}

// ListenServer binds the fleet address and starts accepting worker
// joins and job submissions immediately. Jobs submitted before enough
// workers joined simply wait in the queue (unless they ask for more
// workers than the whole fleet, which is refused).
func ListenServer(opts ServerOptions) (*Server, error) {
	if opts.FleetAddr == "" {
		opts.FleetAddr = "127.0.0.1:0"
	}
	// The registry callback outlives this constructor and must see the
	// scheduler created after the master; late-bind it atomically.
	var sched atomic.Pointer[serve.Scheduler]
	m, err := nettrans.Listen(nettrans.MasterConfig{
		Addr: opts.FleetAddr,
		Logf: opts.Logf,
		OnRegistry: func() {
			if s := sched.Load(); s != nil {
				s.Notify()
			}
		},
	})
	if err != nil {
		return nil, err
	}
	s, err := serve.New(serve.Config{
		Fleet:      serve.NettransFleet{M: m},
		Resolve:    resolveSpec,
		Cluster:    cluster.Testbed12(defaultTestbedSeed),
		QueueDepth: opts.QueueDepth,
		Store:      opts.Store,
		Logf:       opts.Logf,
	})
	if err != nil {
		m.Close()
		return nil, err
	}
	sched.Store(s)
	// Pump once now that the registry callback can reach the scheduler:
	// jobs recovered from the store at construction are waiting in the
	// queue and must not depend on a future worker join to start.
	s.Notify()
	return &Server{master: m, sched: s, api: serve.NewAPI(s)}, nil
}

// FleetAddr returns the bound fleet listen address workers dial.
func (s *Server) FleetAddr() string { return s.master.Addr() }

// Handler returns the HTTP API: job submission, listing, cancellation,
// per-job event streams, and fleet status.
func (s *Server) Handler() http.Handler { return s.api.Handler() }

// Workers lists the currently registered fleet workers.
func (s *Server) Workers() []WorkerInfo {
	nodes := s.master.Nodes()
	out := make([]WorkerInfo, len(nodes))
	for i, nd := range nodes {
		out[i] = WorkerInfo{Name: nd.Name, Speed: nd.Speed, Capacity: nd.Capacity}
	}
	return out
}

// Drain shuts the scheduler down gracefully: new submissions are
// refused, queued jobs are cancelled, and running jobs are interrupted
// at their next protocol boundary — each finishing as Cancelled with
// its best-so-far result. Drain returns when every runner unwound, or
// with ctx's error.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Close releases the fleet listener and every worker connection. Call
// Drain first for a graceful shutdown.
func (s *Server) Close() error { return s.master.Close() }

// resolveSpec constructs the built-in workload a job spec names. It is
// the shared resolver of the serving master and of resolver-equipped
// worker daemons (Worker with a nil problem), so both sides build each
// job's problem from the same inputs.
func resolveSpec(spec core.ProblemSpec) (core.Problem, error) {
	switch spec.Kind {
	case "placement":
		p, err := PlacementBenchmark(spec.Circuit)
		if err != nil {
			return nil, err
		}
		return adapt(p), nil
	case "qap":
		if spec.QAPN < 2 {
			return nil, fmt.Errorf("pts: qap size %d < 2", spec.QAPN)
		}
		return adapt(RandomQAP(spec.QAPN, spec.QAPSeed)), nil
	case "flowshop":
		p, err := FlowShopBenchmark(spec.Instance)
		if err != nil {
			return nil, err
		}
		return adapt(p), nil
	case "jobshop":
		p, err := JobShopBenchmark(spec.Instance)
		if err != nil {
			return nil, err
		}
		return adapt(p), nil
	default:
		return nil, fmt.Errorf("pts: unknown problem kind %q (want \"placement\", \"qap\", \"flowshop\" or \"jobshop\")", spec.Kind)
	}
}
