package pts

import (
	"context"
	"math"
	"testing"
)

// Relaxed-mode golden reproduction tests: the counterpart of
// TestGoldenStaticRuns for WithRelaxedAccumulation. Relaxed batch
// evaluation reassociates the weighted-delta accumulation and folds the
// fuzzy cost with hoisted reciprocals, so it is exempt from the strict
// bit-identity contract — but it is still deterministic: a fixed-seed
// run must reproduce these exact values, they just pin a different
// (relaxed-mode) trajectory. The strict goldens in golden_test.go are
// untouched by the flag.
//
// The highway case is chosen because its relaxed trajectory diverges
// from the strict one (the test asserts the divergence, proving the
// relaxed kernels are actually live in the workers); on the c532 and
// c1355 cases the final-ulp differences never flip a candidate argmin
// at this iteration budget, so their relaxed goldens happen to coincide
// with the strict values — still pinned here independently, so either
// mode can move only by changing its own goldens.
func TestGoldenRelaxedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds each")
	}
	for _, tc := range []struct {
		name          string
		circuit       string
		global, local int
		seed          uint64
		best, initial float64
		permhash      uint64
		diverges      bool // strict same-config run must differ
	}{
		{"highway-diverging", "highway", 12, 50, 7,
			0.025931821196444993, 0.68373015873015874, 0xbafff230a60b634c, true},
		{"c532", "c532", 6, 25, 42,
			0.28813402176124203, 0.68373015873015885, 0x5cc29b37ae76080f, false},
		{"c1355", "c1355", 6, 25, 42,
			0.51135298524665562, 0.68373015873015885, 0x33f1b9dc9c51c7ac, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := []Option{
				WithWorkers(3, 2),
				WithIterations(tc.global, tc.local),
				WithTabu(10, 6, 3),
				WithSeed(tc.seed),
				WithCluster(Homogeneous(12, 1)),
			}
			prob, err := PlacementBenchmark(tc.circuit)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Solve(context.Background(), prob,
				append(opts, WithRelaxedAccumulation(true))...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(res.BestCost) != math.Float64bits(tc.best) {
				t.Errorf("BestCost = %.17g, relaxed golden %.17g (bit mismatch)", res.BestCost, tc.best)
			}
			if math.Float64bits(res.InitialCost) != math.Float64bits(tc.initial) {
				t.Errorf("InitialCost = %.17g, relaxed golden %.17g (bit mismatch)", res.InitialCost, tc.initial)
			}
			if h := goldenHash(res.Best); h != tc.permhash {
				t.Errorf("permhash = %#x, relaxed golden %#x", h, tc.permhash)
			}
			if tc.diverges {
				strict, err := Solve(context.Background(), prob, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(strict.BestCost) == math.Float64bits(tc.best) &&
					goldenHash(strict.Best) == tc.permhash {
					t.Errorf("strict run reproduced the relaxed golden exactly; relaxed kernels appear inactive")
				}
			}
		})
	}
}

// TestGoldenRelaxedPool pins the evaluation pool's numeric neutrality:
// sharding a batch over pool workers changes which goroutine evaluates
// each candidate but not any candidate's arithmetic, so a pooled run
// must reproduce the unpooled relaxed golden bit-for-bit.
func TestGoldenRelaxedPool(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds each")
	}
	prob, err := PlacementBenchmark("highway")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), prob,
		WithWorkers(3, 2),
		WithIterations(12, 50),
		WithTabu(10, 6, 3),
		WithSeed(7),
		WithCluster(Homogeneous(12, 1)),
		WithRelaxedAccumulation(true),
		WithEvaluationPool(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	const (
		best            = 0.025931821196444993
		initial         = 0.68373015873015874
		permhash uint64 = 0xbafff230a60b634c
	)
	if math.Float64bits(res.BestCost) != math.Float64bits(best) {
		t.Errorf("pooled BestCost = %.17g, relaxed golden %.17g (bit mismatch)", res.BestCost, best)
	}
	if math.Float64bits(res.InitialCost) != math.Float64bits(initial) {
		t.Errorf("pooled InitialCost = %.17g, relaxed golden %.17g (bit mismatch)", res.InitialCost, initial)
	}
	if h := goldenHash(res.Best); h != permhash {
		t.Errorf("pooled permhash = %#x, relaxed golden %#x", h, permhash)
	}
}
