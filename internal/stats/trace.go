package stats

import "math"

// TracePoint is one observation of the incumbent best cost at a time.
type TracePoint struct {
	Time float64 // seconds (virtual or wall) since the run started
	Cost float64 // best cost known at Time
}

// Trace records the evolution of the best cost over a run. Points must be
// appended in nondecreasing time order; cost is expected to be
// nonincreasing but this is not enforced (the paper's plots use the raw
// incumbent).
type Trace struct {
	Points []TracePoint
}

// Record appends an observation. Observations that do not improve on the
// current best are still recorded so that time-axis resolution is kept.
func (t *Trace) Record(time, cost float64) {
	t.Points = append(t.Points, TracePoint{Time: time, Cost: cost})
}

// Len returns the number of recorded points.
func (t *Trace) Len() int { return len(t.Points) }

// Final returns the last recorded cost, or NaN for an empty trace.
func (t *Trace) Final() float64 {
	if len(t.Points) == 0 {
		return math.NaN()
	}
	return t.Points[len(t.Points)-1].Cost
}

// BestCost returns the minimum cost recorded, or NaN for an empty trace.
func (t *Trace) BestCost() float64 {
	if len(t.Points) == 0 {
		return math.NaN()
	}
	best := t.Points[0].Cost
	for _, p := range t.Points[1:] {
		if p.Cost < best {
			best = p.Cost
		}
	}
	return best
}

// End returns the time of the last recorded point, or 0 for an empty
// trace.
func (t *Trace) End() float64 {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[len(t.Points)-1].Time
}

// TimeToReach returns the earliest recorded time at which the cost was <=
// x, implementing the t(n,x) term of the paper's speedup definition.
// The second return value is false if the trace never reaches x.
func (t *Trace) TimeToReach(x float64) (float64, bool) {
	for _, p := range t.Points {
		if p.Cost <= x {
			return p.Time, true
		}
	}
	return 0, false
}

// CostAt returns the best cost achieved no later than time. For queries
// before the first point it returns +Inf (no solution known yet).
func (t *Trace) CostAt(time float64) float64 {
	best := math.Inf(1)
	for _, p := range t.Points {
		if p.Time > time {
			break
		}
		if p.Cost < best {
			best = p.Cost
		}
	}
	return best
}

// Speedup computes the paper's speedup definition
//
//	speedup(n, x) = t(1, x) / t(n, x)
//
// given the single-worker trace base and the n-worker trace tr, for
// quality target x. If tr never reaches x, the ratio uses tr's end time
// and reached=false, yielding a conservative lower bound on the speedup.
func Speedup(base, tr *Trace, x float64) (speedup float64, reached bool) {
	t1, ok1 := base.TimeToReach(x)
	if !ok1 {
		return math.NaN(), false
	}
	tn, okn := tr.TimeToReach(x)
	if !okn {
		end := tr.End()
		if end <= 0 {
			return math.NaN(), false
		}
		return t1 / end, false
	}
	if tn <= 0 {
		// Reached at time zero (initial solution already meets x): define
		// speedup against the base time directly to avoid division by zero.
		if t1 <= 0 {
			return 1, true
		}
		return math.Inf(1), true
	}
	return t1 / tn, true
}
