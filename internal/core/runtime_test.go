package core

import (
	"testing"

	"pts/internal/cluster"
	"pts/internal/netlist"
)

func TestRuntimeCountersPopulated(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	res, err := Run(nl, cluster.Homogeneous(12, 1), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := int64(1 + cfg.TSWs + cfg.TSWs*cfg.CLWs) // master + TSWs + CLWs
	if res.Runtime.Spawns != wantTasks {
		t.Errorf("Spawns = %d, want %d", res.Runtime.Spawns, wantTasks)
	}
	if res.Runtime.Sends == 0 || res.Runtime.Events == 0 {
		t.Errorf("counters empty: %+v", res.Runtime)
	}
	// Lower bound on messages: every local iteration sends TagSearch to
	// each CLW and receives one candidate back.
	minSends := 2 * res.Stats.LocalIters
	if res.Runtime.Sends < minSends {
		t.Errorf("Sends = %d, below protocol minimum %d", res.Runtime.Sends, minSends)
	}
}

func TestCLWLevelHalfSyncOnly(t *testing.T) {
	// One TSW with several CLWs on a heterogeneous cluster: forcing can
	// only happen at the CLW level (a single TSW is never forced — the
	// master's half of one is one).
	nl := netlist.MustBenchmark("highway")
	cfg := quickCfg()
	cfg.TSWs, cfg.CLWs = 1, 4
	cfg.GlobalIters, cfg.LocalIters = 3, 20
	res, err := Run(nl, cluster.Testbed12(7), cfg, Virtual)
	if err != nil {
		t.Fatal(err)
	}
	// All local iterations must have completed: nothing forces a lone TSW.
	if res.Stats.LocalIters != int64(cfg.GlobalIters*cfg.LocalIters) {
		t.Errorf("LocalIters = %d, want %d (a single TSW must never be cut short)",
			res.Stats.LocalIters, cfg.GlobalIters*cfg.LocalIters)
	}
	if res.BestCost >= res.InitialCost {
		t.Error("no improvement")
	}
}

func TestMessageVolumeScalesWithWorkers(t *testing.T) {
	nl := netlist.MustBenchmark("highway")
	clus := cluster.Homogeneous(12, 1)
	run := func(clws int) int64 {
		cfg := quickCfg()
		cfg.CLWs = clws
		res, err := Run(nl, clus, cfg, Virtual)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime.Sends
	}
	if !(run(4) > run(1)) {
		t.Error("more CLWs should exchange more messages")
	}
}
