// Package nettrans is the distributed transport of the PVM substrate:
// it runs the same master/TSW/CLW protocol that the in-process
// transport hosts on goroutines across real OS processes connected over
// TCP.
//
// Topology is a star, like PVM's daemon routing: worker processes dial
// the master, register their name, relative speed and capacity (how
// many machine slots they contribute — the heterogeneity knobs the
// in-process cluster model expresses as pts/internal/cluster speed
// factors), and the master routes every cross-process frame. Tasks
// whose target machine slot belongs to the master process run in it;
// all others are rebuilt on their owning worker from the portable
// pvm.Spec the program provides.
//
// Frames are length-prefixed gob: a 4-byte big-endian length followed
// by one gob-encoded frame struct, whose message payloads are in turn
// gob-encoded bytes so the master can route them without decoding.
// Oversized or undecodable frames are rejected and the offending
// connection dropped. Workers reconnect with exponential backoff; a
// worker lost mid-run aborts the run (pvm.ErrAborted) after draining
// what can be drained, so the master still reports its best-so-far.
package nettrans

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"pts/internal/pvm"
)

// frameType discriminates protocol frames.
type frameType uint8

const (
	// fJoin registers a worker with the master (worker→master).
	fJoin frameType = iota + 1
	// fJoinAck accepts or refuses a join; Err holds the refusal reason
	// (master→worker).
	fJoinAck
	// fJob starts a job on a worker: the program payload plus the
	// worker's machine-slot assignment (master→worker).
	fJob
	// fJobErr refuses a job — e.g. the worker's locally constructed
	// problem does not match the master's (worker→master).
	fJobErr
	// fSpawn hosts a task on a worker (master→worker).
	fSpawn
	// fSpawnReq asks the master to allocate and place a task spawned by
	// a worker-hosted task (worker→master).
	fSpawnReq
	// fSpawnAck answers an fSpawnReq with the allocated ID
	// (master→worker).
	fSpawnAck
	// fMsg carries one task-to-task message (both directions).
	fMsg
	// fTaskDone reports a hosted task's termination (worker→master).
	fTaskDone
	// fCancel propagates cooperative context cancellation: tasks see
	// Cancelled() and drain the protocol normally (master→worker).
	fCancel
	// fAbort tears the job down: blocked tasks unwind immediately
	// (master→worker).
	fAbort
	// fEndJob announces that every task finished and asks for the
	// worker's counters (master→worker).
	fEndJob
	// fBye returns the worker's counters for the job (worker→master).
	fBye
	// fResult delivers the program's final summary and closes the job
	// (master→worker).
	fResult
	// fNotify registers a task-exit watch: the sending task asks to
	// receive a pvm.TagExit message should the process hosting the
	// watched task be lost (worker→master).
	fNotify
	// fRing announces elastic slot-ring growth — an absorbed late
	// joiner's slots appended to TotalSlots/Speeds — to workers already
	// hosting the job, so their machine-index wrapping and speed
	// lookups stay consistent with the master's (master→worker).
	fRing
	// fLeave is a worker's graceful deregistration (SIGTERM drain): the
	// master retires the node deliberately — idle nodes leave the
	// registry quietly, a node hosting tasks has them written off with
	// pvm.TagExit delivered to their watchers, exactly like a loss but
	// orderly — and closes the connection (worker→master).
	fLeave
)

// frame is the single wire message; which fields are meaningful depends
// on Type. Keeping one struct keeps the gob stream self-describing and
// the codec trivial.
type frame struct {
	Type frameType

	// Join / JoinAck.
	Worker   string
	Speed    float64
	Capacity int
	Err      string

	// Job: the node's machine-slot window [Slot, Slot+Slots) of
	// TotalSlots, the run seed and work-emulation scale, and the
	// program payload. Speeds is the slot-indexed table of declared
	// relative machine speeds (slot 0 is the master, speed 1.0), so
	// worker-hosted schedulers can seed speed-proportional work shares;
	// slots absorbed after this frame was sent are simply absent and
	// default to 1.0 on the reader.
	Seed       uint64
	WorkScale  float64
	Slot       int
	Slots      int
	TotalSlots int
	Speeds     []float64

	// Spawn / SpawnReq / SpawnAck / TaskDone.
	Task    pvm.TaskID
	Name    string
	Machine int
	Kind    string
	Seq     uint64

	// Msg.
	From pvm.TaskID
	To   pvm.TaskID
	Tag  pvm.Tag

	// Payload carries the gob-encoded message data (fMsg), spec data
	// (fSpawn/fSpawnReq), program payload (fJob) or final summary
	// (fResult).
	Payload []byte

	// Bye.
	Sends int64
}

// maxFrame bounds one frame's encoded size; anything larger is treated
// as a malformed or hostile stream and the connection is dropped.
const maxFrame = 64 << 20

// conn wraps a TCP connection with the frame codec. Reads are owned by
// a single goroutine; writes are serialized by the mutex so any task
// goroutine may send.
//
// Both directions keep one persistent gob codec for the connection's
// lifetime, so the frame type descriptor crosses the wire once, not
// per message — while every Encode is still framed by a 4-byte length
// prefix, which is what lets the reader bound and reject malformed or
// oversized frames before gob ever parses them.
type conn struct {
	nc net.Conn

	r       *bufio.Reader
	dec     *gob.Decoder
	decSrc  swapReader
	readBuf []byte

	mu     sync.Mutex
	w      *bufio.Writer
	enc    *gob.Encoder
	encBuf bytes.Buffer
}

// swapReader is the persistent decoder's source: each frame's bytes
// are slotted in before Decode and must be fully consumed by it.
type swapReader struct {
	r bytes.Reader
}

func (s *swapReader) Read(p []byte) (int, error) { return s.r.Read(p) }

func newConn(nc net.Conn) *conn {
	c := &conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
	c.enc = gob.NewEncoder(&c.encBuf)
	c.dec = gob.NewDecoder(&c.decSrc)
	return c
}

// write encodes f as one length-prefixed gob frame.
func (c *conn) write(f *frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.encBuf.Reset()
	if err := c.enc.Encode(f); err != nil {
		return fmt.Errorf("nettrans: encode frame: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(c.encBuf.Len()))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(c.encBuf.Bytes()); err != nil {
		return err
	}
	return c.w.Flush()
}

// read decodes the next frame, rejecting malformed input: a length
// outside (0, maxFrame] or a gob stream that does not decode to a frame
// fails the connection.
func (c *conn) read() (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("nettrans: malformed frame: length %d", n)
	}
	if cap(c.readBuf) < int(n) {
		c.readBuf = make([]byte, n)
	}
	buf := c.readBuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	c.decSrc.r.Reset(buf)
	var f frame
	if err := c.dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("nettrans: malformed frame: %w", err)
	}
	if c.decSrc.r.Len() != 0 {
		return nil, fmt.Errorf("nettrans: malformed frame: %d trailing bytes", c.decSrc.r.Len())
	}
	return &f, nil
}

func (c *conn) close() error { return c.nc.Close() }

// mailbox is the per-task selective-receive queue shared by every
// nettrans-hosted task (master- or worker-side): an inbox guarded by a
// cond, unwinding the blocked receiver when the run aborts.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	inbox []pvm.Message
}

func (b *mailbox) init() { b.cond = sync.NewCond(&b.mu) }

func (b *mailbox) deliver(m pvm.Message) {
	b.mu.Lock()
	b.inbox = append(b.inbox, m)
	b.mu.Unlock()
	b.cond.Signal()
}

// wake re-evaluates every blocked receiver (the abort path).
func (b *mailbox) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// recv blocks until a matching message arrives; aborted is re-checked
// on every wakeup and unwinds the task when it reports true.
func (b *mailbox) recv(aborted func() bool, tags []pvm.Tag) pvm.Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if m, ok := pvm.ScanInbox(&b.inbox, tags); ok {
			return m
		}
		if aborted() {
			pvm.AbortTask()
		}
		b.cond.Wait()
	}
}

func (b *mailbox) tryRecv(tags []pvm.Tag) (pvm.Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return pvm.ScanInbox(&b.inbox, tags)
}

// encodePayload gob-encodes a message payload; the concrete type must
// be gob-registered on both sides. nil encodes as an empty payload.
func encodePayload(data any) ([]byte, error) {
	if data == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&data); err != nil {
		return nil, fmt.Errorf("nettrans: encode payload %T: %w", data, err)
	}
	return buf.Bytes(), nil
}

// decodePayload reverses encodePayload.
func decodePayload(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var data any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&data); err != nil {
		return nil, fmt.Errorf("nettrans: decode payload: %w", err)
	}
	return data, nil
}
