package core

import (
	"pts/internal/pvm"
	"pts/internal/tabu"
)

// Message tags of the PTS protocol.
const (
	// TagInit carries the initial solution and worker range
	// (master→TSW, TSW→CLW).
	TagInit pvm.Tag = iota + 1
	// TagSearch asks a CLW to build one compound move (TSW→CLW).
	TagSearch
	// TagCandidate returns a CLW's compound move (CLW→TSW).
	TagCandidate
	// TagSync tells CLWs which move won this iteration so they undo
	// their tentative move and apply the winner (TSW→CLW).
	TagSync
	// TagNewState replaces a CLW's whole solution at a global
	// synchronization (TSW→CLW).
	TagNewState
	// TagBest reports a TSW's best solution, cost and tabu list
	// (TSW→master).
	TagBest
	// TagGlobal broadcasts the global best solution and its tabu list
	// (master→TSW).
	TagGlobal
	// TagReportNow forces a child to report its best immediately — the
	// heterogeneity adaptation (master→TSW, TSW→CLW).
	TagReportNow
	// TagStop shuts a worker down (parent→child).
	TagStop
	// TagStats returns a worker's counters at shutdown (child→parent).
	TagStats
	// TagRebalance re-partitions a CLW's element range and per-step
	// trial budget (TSW→CLW). Sent only at the resync barrier —
	// immediately before the TagNewState that replaces the CLW's whole
	// solution — so candidate semantics stay well-defined: a range never
	// changes while candidates built against it are in flight.
	TagRebalance
	// TagRespawn asks the master to spawn a replacement for a CLW whose
	// hosting process died (TSW→master). The master places the
	// replacement on live capacity — absorbed elastic spare slots
	// first, else the least-loaded survivor — and answers with
	// TagRespawnAck. Sent only in adaptive runs with respawn enabled.
	TagRespawn
	// TagRespawnAck returns the replacement CLW's task ID, or a
	// negative ID when the master declined — the run was already
	// shutting down (master→TSW). The TSW seeds the replacement with
	// TagInit at its next resync barrier.
	TagRespawnAck
	// TagCheckpoint carries a TSW's recovery checkpoint out of band
	// (TSW→master): sent once right after the TSW spawned its CLWs, so
	// the master can resurrect a TSW lost before its first report.
	// Subsequent checkpoints piggyback on TagBest instead.
	TagCheckpoint
)

// initMsg is the TagInit payload. Trials, when positive, overrides the
// worker's per-step trial budget (the adaptive scheduler's
// share-proportional budget); 0 keeps the tuned default. Reseed (with
// HasReseed set) replaces the receiving CLW's random stream — durable
// runs seed a replacement attached after the barrier's TagNewState
// went out with the same per-slot barrier draw it would have received
// there, so a resumed run's streams match the uninterrupted one's.
type initMsg struct {
	Perm             []int32
	RangeLo, RangeHi int32
	WorkerIdx        int
	Trials           int
	Reseed           uint64
	HasReseed        bool
}

// PVMItems models the message size for latency purposes.
//
// Note on the size model: the adaptive-scheduling and durability
// piggyback fields (initMsg.Trials/Reseed, candMsg.CumTrials/At,
// stateMsg.Reseed, globalMsg range updates, bestMsg/WorkerStats
// scheduler counters, tswCheckpoint restart flags) are deliberately
// excluded from every PVMItems formula. The formulas calibrate the
// virtual runtime against the paper's 2003-era message costs, and
// keeping them untouched keeps fixed-seed static-mode runs
// bit-identical across releases — the few extra words are far below
// the model's resolution.
func (m initMsg) PVMItems() int { return len(m.Perm) + 4 }

// candMsg is the TagCandidate payload. CumTrials and At piggyback the
// CLW's cumulative charged trials and its clock at send time — the
// throughput observations the adaptive scheduler folds into its
// per-worker weights (modeled time under the virtual runtime, so
// adaptive decisions stay deterministic).
type candMsg struct {
	Move      tabu.CompoundMove
	Forced    bool // the move was truncated by TagReportNow
	CumTrials int64
	At        float64
}

func (m candMsg) PVMItems() int { return 2*len(m.Move.Swaps) + 3 }

// rebalanceMsg is the TagRebalance payload: the CLW's new element
// range and per-step trial budget, effective at the resync barrier it
// is sent at.
type rebalanceMsg struct {
	RangeLo, RangeHi int32
	Trials           int
}

func (m rebalanceMsg) PVMItems() int { return 3 }

// respawnMsg is the TagRespawn payload: which of the sending TSW's CLW
// slots died and the tuning the replacement must run with.
type respawnMsg struct {
	CLWIdx int
	Tune   Tuning
}

func (m respawnMsg) PVMItems() int { return 5 }

// respawnAckMsg is the TagRespawnAck payload: the replacement task for
// the given CLW slot, or ID < 0 when the master declined (the run is
// shutting down).
type respawnAckMsg struct {
	CLWIdx int
	ID     pvm.TaskID
}

func (m respawnAckMsg) PVMItems() int { return 2 }

// clwSlotState is one CLW's standing in a checkpoint.
type clwSlotState int

const (
	// clwSlotDead: the slot's worker died and no replacement is
	// attached yet.
	clwSlotDead clwSlotState = iota
	// clwSlotLive: the slot's worker is attached and searching.
	clwSlotLive
	// clwSlotPending: a replacement was spawned but not yet seeded (it
	// is parked awaiting TagInit).
	clwSlotPending
)

// clwSlot is one CLW's record in a checkpoint: enough for a resumed
// TSW to re-attach the survivor (or re-adopt a pending replacement)
// exactly where the dead TSW left it.
type clwSlot struct {
	ID               pvm.TaskID
	State            clwSlotState
	RangeLo, RangeHi int32
	Trials           int
}

// respawnEntry is one replacement CLW the master spawned for a TSW —
// the master's ledger of replacements whose ack may have died with the
// TSW it was sent to. Handed to a resumed TSW so no replacement is
// ever orphaned.
type respawnEntry struct {
	CLWIdx int
	ID     pvm.TaskID
}

// tswCheckpoint is a TSW's recovery state: everything a replacement
// TSW needs to continue the search where the dead one left off. It
// rides on bestMsg (every Config.CheckpointEvery-th report) and once,
// at spawn, as a bare TagCheckpoint — so the master can always
// resurrect a lost TSW that had live CLWs.
//
// RandSeed is a fresh draw from the checkpointing TSW's own stream:
// the resumed TSW derives its generator from it rather than from its
// (necessarily different) spawn path, so recovery does not reset the
// diversification trajectory to a replay of the beginning.
type tswCheckpoint struct {
	WorkerIdx int
	Iter      int64
	Best      float64
	BestPerm  []int32
	Perm      []int32
	Tabu      []tabu.Entry
	Freq      []int64
	RandSeed  uint64
	Stats     WorkerStats
	DivLo     int32
	DivHi     int32
	CLWs      []clwSlot
	// Reports is how many rounds the TSW had reported when the
	// checkpoint was taken; a successor continues the count so the
	// CheckpointEvery cadence survives a resume.
	Reports int
	// AcceptedRefresh is the accepted-move count toward the next
	// RefreshEvery evaluator refresh. It carries across rounds, so a
	// successor must continue it mid-cycle — resetting it would shift
	// every later refresh point and (because a refresh flushes the
	// incremental evaluator's float accumulation) fork a durable
	// resume off the uninterrupted trajectory.
	AcceptedRefresh int
	// Extra lists replacements the master spawned for this TSW whose
	// acks are not reflected in the checkpoint (set only by the master
	// when handing the checkpoint to a resumed TSW).
	Extra []respawnEntry
	// Restart marks a checkpoint that crossed a master restart: the
	// CLW task IDs in it are stale (the transport aborted every worker
	// task when the old master died), so the resumed TSW spawns a
	// fresh CLW set instead of adopting, and skips the re-announce
	// checkpoint (which would advance its restored random stream).
	// Set only by the master when resuming from a persisted snapshot.
	Restart bool
	// SkipRound additionally marks that the checkpointed round is
	// already complete and folded into the master's snapshot: the
	// resumed TSW skips straight to the verdict wait for the master's
	// kick-off broadcast instead of re-running (and re-reporting) it.
	// Set only on the checkpoints handed to TSWs spawned at master
	// resume — a TSW lost *during* the resumed run re-runs its
	// checkpointed round like any mid-run resurrection.
	SkipRound bool
}

// PVMItems: checkpoints exist only in adaptive and durable runs and
// are excluded from the calibrated latency model like every adaptive
// piggyback (see the note on initMsg.PVMItems); the bare TagCheckpoint
// message counts as the minimum one item.
func (c tswCheckpoint) PVMItems() int { return 1 }

// syncMsg is the TagSync payload: the winning move of the iteration
// (possibly empty when no move was taken).
type syncMsg struct {
	Chosen tabu.CompoundMove
}

func (m syncMsg) PVMItems() int { return 2*len(m.Chosen.Swaps) + 3 }

// stateMsg is the TagNewState payload. Reseed (with HasReseed set)
// replaces the receiving CLW's random stream: durable runs draw one
// reseed per CLW slot from the TSW's own stream at every resync
// barrier — exactly Config.CLWs draws in slot order, regardless of
// slot liveness, so the TSW's stream consumption is independent of
// losses — making every CLW stream a pure function of the persisted
// TSW state rather than of the spawn path. That is what lets a run
// resumed from a master snapshot reproduce the uninterrupted
// store-enabled run bit-for-bit.
type stateMsg struct {
	Perm      []int32
	Reseed    uint64
	HasReseed bool
}

// PVMItems excludes the durable reseed like every piggyback field (see
// the note on initMsg.PVMItems).
func (m stateMsg) PVMItems() int { return len(m.Perm) }

// improvement is one incumbent improvement a TSW observed locally:
// the virtual time and the new best cost.
type improvement struct {
	Time float64
	Cost float64
}

// bestMsg is the TagBest payload: the paper's TSW→master exchange is
// the best solution plus the associated tabu list. Points carries the
// TSW's incumbent improvements since its previous report, so the master
// can build a fine-grained best-cost-versus-time envelope; Stats is the
// TSW's cumulative counters, feeding the per-round progress snapshots.
type bestMsg struct {
	Cost   float64
	Perm   []int32
	Tabu   []tabu.Entry
	Points []improvement
	Forced bool
	Stats  WorkerStats
	// Checkpoint, when non-nil, is the TSW's piggybacked recovery
	// state (adaptive runs with respawn enabled, and every durable
	// run; excluded from the latency model like every adaptive field).
	Checkpoint *tswCheckpoint
}

func (m bestMsg) PVMItems() int {
	return len(m.Perm) + 3*len(m.Tabu) + 4*len(m.Points) + 4 + m.Stats.PVMItems()
}

// globalMsg is the TagGlobal payload. When Rebalance is set the
// receiving TSW also adopts [RangeLo, RangeHi) as its new
// diversification range — the master-level half of the adaptive
// scheduler, re-partitioning the element space over TSWs by their
// observed iteration throughput.
type globalMsg struct {
	Perm             []int32
	Tabu             []tabu.Entry
	RangeLo, RangeHi int32
	Rebalance        bool
}

func (m globalMsg) PVMItems() int { return len(m.Perm) + 3*len(m.Tabu) }

// WorkerStats counts one worker's search events; workers aggregate
// their children's stats into their own before reporting.
type WorkerStats struct {
	LocalIters       int64
	CandidatesBuilt  int64
	TrialsCharged    int64
	MovesAccepted    int64
	TabuRejected     int64
	Aspirations      int64
	Fallbacks        int64
	ForcedReports    int64
	Diversifications int64
	// Rebalances counts adopted adaptive re-partitions (TSW-level for
	// CLW ranges, master-level rebalances are not counted here);
	// WorkersLost counts workers written off after their hosting
	// process died (CLWs by their TSW, TSWs by the master);
	// WorkersRespawned counts the replacements the master spawned for
	// them (CLW replacements plus TSW resurrections from checkpoint).
	// All three stay 0 in static mode.
	Rebalances       int64
	WorkersLost      int64
	WorkersRespawned int64
}

// add accumulates other into s.
func (s *WorkerStats) add(other WorkerStats) {
	s.LocalIters += other.LocalIters
	s.CandidatesBuilt += other.CandidatesBuilt
	s.TrialsCharged += other.TrialsCharged
	s.MovesAccepted += other.MovesAccepted
	s.TabuRejected += other.TabuRejected
	s.Aspirations += other.Aspirations
	s.Fallbacks += other.Fallbacks
	s.ForcedReports += other.ForcedReports
	s.Diversifications += other.Diversifications
	s.Rebalances += other.Rebalances
	s.WorkersLost += other.WorkersLost
	s.WorkersRespawned += other.WorkersRespawned
}

// PVMItems stays at the original 9-field size: see the note on
// initMsg.PVMItems — the scheduler counters ride free in the latency
// model to preserve the calibrated reference timings.
func (s WorkerStats) PVMItems() int { return 9 }
