// Package pts is a parallel tabu search solver in the style of
// "Parallel Tabu Search in a Heterogeneous Environment" (Al-Yamani,
// Sait, Barada, Youssef — IPDPS 2003): a two-level parallelization —
// multi-search tabu workers above, functionally decomposed
// candidate-list workers below — with the paper's half-sync adaptation
// to machines of different speeds and loads, running on a PVM-like
// message-passing substrate over either a deterministic simulated
// cluster or real goroutines.
//
// # Solving a problem
//
// The public surface is one call:
//
//	p, err := pts.PlacementBenchmark("c532")
//	if err != nil { ... }
//	res, err := pts.Solve(ctx, p,
//		pts.WithWorkers(4, 2),
//		pts.WithIterations(10, 60),
//		pts.WithSeed(7),
//	)
//
// Solve is context-aware: cancel ctx (or let its deadline pass) and the
// run winds down cooperatively, returning the best solution found so
// far with Result.Interrupted set. WithProgress streams one Snapshot
// per global iteration while the run is in flight.
//
// # Pluggable problems
//
// The engine is problem-agnostic: anything implementing Problem — mint
// independent search States over a shared permutation encoding — can be
// solved. Four workloads ship built in: the paper's VLSI standard-cell
// placement under a fuzzy multi-objective cost (PlacementProblem), the
// quadratic assignment problem (QAPProblem), permutation flow shop
// scheduling (FlowShopProblem, with Taillard's ta001 embedded), and
// job shop scheduling under an operation-based permutation encoding
// (JobShopProblem, with OR-Library ft06/ft10/la01 embedded). All run
// through the identical Solve path.
//
// # Execution modes
//
// WithVirtualTime (the default) executes on a discrete-event kernel
// with modeled machine speeds, background loads and LAN latencies:
// results are bit-reproducible in WithSeed, which is what every figure
// of the paper's evaluation uses. WithRealTime executes the same
// algorithm code on goroutines with wall-clock timing.
//
// # Distributed mode
//
// Real-time runs can leave the process: WithListen makes a Solve the
// master of a distributed run over TCP, and worker processes join it
// with WithJoin (one job) or Worker (a daemon), each declaring a
// relative speed factor and slot capacity in the master's registry —
// the heterogeneity the paper's PVM testbed had in hardware. Every
// process builds the same Problem from the same inputs; only protocol
// messages cross the wire, and with half-sync off a fixed-seed
// distributed run returns exactly the single-process result.
//
// Virtual mode stays single-process by design: it is the deterministic
// reference the distributed and goroutine transports are checked
// against, not a mode they replace.
//
// # Adaptive scheduling
//
// WithAdaptive turns on the heterogeneity-aware scheduler: element
// ranges are seeded proportionally to the declared machine speeds and
// re-partitioned at synchronization barriers to track each worker's
// observed throughput, with per-step trial budgets scaled to range
// shares. On the distributed transport, adaptive runs additionally
// absorb late-joining worker processes as spare capacity.
//
// # Failure recovery
//
// Adaptive distributed runs survive worker-process loss, and — with
// respawn on, the default — recover from it rather than merely
// tolerate it. A lost candidate-list worker's element range folds back
// into the survivors, the owning TSW requests a replacement, and the
// master spawns it onto live capacity (absorbed elastic spare slots
// first, else the least-loaded surviving node), re-seeded from the
// TSW's current solution at the next synchronization barrier. Each TSW
// also piggybacks a recovery checkpoint (incumbent solution, tabu
// memory, iteration counters, random-stream seed, CLW attachment
// table) on its reports — WithCheckpointEvery sets the cadence — so a
// lost TSW is resurrected from its last checkpoint with its surviving
// CLWs re-attached. No single worker process is fatal to a run;
// Result.Stats reports WorkersLost and WorkersRespawned.
// WithRespawn(false) restores the fold-only degradation (and makes a
// TSW loss abort again); static runs abort on any loss, the paper's
// behavior. See ARCHITECTURE.md for the full protocol.
//
// Reproducibility contract:
//
//   - Adaptive off (the default): fixed-seed virtual-time runs are
//     bit-identical across releases, and a fixed-seed distributed run
//     with half-sync off reproduces the single-process result exactly.
//   - Adaptive on under WithVirtualTime: still deterministic in
//     WithSeed — scheduling decisions key off modeled time — but the
//     trajectory differs from the static partition's and may change
//     across releases as the scheduler evolves.
//   - Adaptive on under WithRealTime: shares follow the wall clock, so
//     runs are not time-reproducible (like any real-mode run); a run
//     that lost workers reports Stats.WorkersLost (and, with respawn
//     on, Stats.WorkersRespawned) instead of Interrupted.
//
// # Evaluator complexity guarantees
//
// The search's throughput rests on the placement evaluator's trial
// kernel, which maintains these bounds:
//
//   - A trial swap or relocation (cost deltas for wirelength, weighted
//     delay and area together) is O(1) per affected net and performs no
//     heap allocation. Each net's bounding box stores, per axis, the
//     boundary coordinates plus their runner-up order statistics, so
//     removing a boundary pin exposes the runner-up and adding a pin can
//     only push a boundary outward — no pin rescan, ever, on the trial
//     path.
//   - Nets connecting both swapped cells are skipped outright (their pin
//     multiset is unchanged), detected by a merge walk over the two
//     cells' sorted CSR net lists.
//   - The area objective (maximum row width) answers trial queries in
//     O(1) from a top-two row-width cache.
//   - Committing a move updates the total wirelength exactly in O(1) per
//     net; a net's runner-up statistics are rebuilt by an O(degree) pin
//     rescan only when the moved pin was at (or tied with) one of the
//     four tracked statistics on some axis — amortized away by the
//     Trials-per-commit ratio of the search. Row-width commits rescan
//     rows only when a top-two row shrinks below the runner-up.
//   - Trials are evaluated in candidate batches (one batch per compound
//     move, the engine's Trials parameter wide): a batch costs one
//     evaluator-state hoist plus the per-trial O(1) work above, so
//     per-call overhead and tabu-ring probing amortize across the batch
//     (one tabu-list pass classifies a whole move set). Batch evaluation
//     is contractually bit-identical to the per-candidate path —
//     candidate generation order, float accumulation order and argmin
//     tie-breaking are preserved, so fixed-seed static runs reproduce
//     the scalar trajectory exactly (asserted by fuzz and golden tests).
//   - Strict vs relaxed accumulation: the contract above is the strict
//     (default) mode, pinned by golden_test.go, and it never changes.
//     WithRelaxedAccumulation opts batch evaluation into reassociated
//     kernels — multi-lane weighted-delta accumulation and a
//     reciprocal-multiply membership fold — that may differ from the
//     strict path in final-ulp rounding but remain deterministic per
//     seed; golden_relaxed_test.go pins the relaxed trajectories
//     separately. WithEvaluationPool shards batches over persistent
//     per-CLW worker goroutines without changing any candidate's
//     arithmetic; it is available only in relaxed mode (strict mode
//     keeps the audited single-threaded path) and both modes stay
//     allocation-free per trial.
//   - The scheduling workloads deliberately break the O(1)-per-delta
//     pattern while keeping every contract above: a flow shop trial
//     recomputes the critical-path section between the swapped
//     positions against cached head/tail matrices (O(machines x span)),
//     and a job shop trial re-decodes the whole operation sequence
//     (O(jobs x machines), with a same-job-token fast path answering
//     zero). Both do all schedule arithmetic in exact integers, so
//     batch and scalar evaluation — and strict and relaxed accumulation
//     — are bit-identical by construction (fuzzed per package, pinned
//     by golden_sched_test.go), and both stay allocation-free per
//     trial once caches are warm.
//
// The implementation lives under internal/ (ARCHITECTURE.md maps the
// layers and documents every protocol message); cmd/ holds the
// executables and examples/ runnable walkthroughs, and the Example
// functions in this package's documentation are runnable as tests.
// bench_test.go carries the per-figure benchmark harness; cmd/ptsbench
// -hotpath measures the trial kernel (results/BENCH_hotpath.json),
// -hetero the adaptive-scheduling payoff (results/BENCH_hetero.json),
// -recovery the worker-loss recovery payoff
// (results/BENCH_recovery.json), and -sched the scheduling workloads'
// search quality and delta-kernel throughput
// (results/BENCH_sched.json).
package pts
