package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pts/internal/cluster"
	"pts/internal/core"
	"pts/internal/cost"
	"pts/internal/netlist"
)

// Heterogeneity benchmark: static vs adaptive partitioning on an
// emulated speed-skewed cluster. Unlike the figure drivers this runs in
// Real mode with WorkScale speed emulation — every modeled trial costs
// real wall time scaled by its machine's declared speed — so the
// measured quantity is genuine wall-clock make-span at an equal
// iteration budget. One fast (4x) and three slow (1x) CLW hosts
// reproduce the regime the adaptive scheduler targets: statically the
// slow nodes bound every iteration; adaptively the fast node carries a
// speed-proportional share of the trial budget and rounds finish
// together.

// HeteroOpts configures the -hetero scenario.
type HeteroOpts struct {
	// Context bounds the runs (nil = background).
	Context context.Context
	// Circuit names the benchmark circuit (default "highway").
	Circuit string
	// WorkScale is the wall-seconds-per-modeled-second emulation factor
	// (default 150; larger = cleaner ratios — per-step sleeps dwarf the
	// OS timer quantum — but longer runs).
	WorkScale float64
	// GlobalIters and LocalIters set the iteration budget (defaults 3
	// and 20 — identical for both sides, by construction).
	GlobalIters, LocalIters int
	// Scale multiplies the local iteration budget (ptsbench -scale);
	// <= 0 means 1.0.
	Scale float64
	// Seed fixes the run seed (default 7).
	Seed uint64
}

func (o HeteroOpts) withDefaults() HeteroOpts {
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Circuit == "" {
		o.Circuit = "highway"
	}
	if o.WorkScale <= 0 {
		o.WorkScale = 150
	}
	if o.GlobalIters <= 0 {
		o.GlobalIters = 3
	}
	if o.LocalIters <= 0 {
		o.LocalIters = 20
	}
	if o.Scale > 0 && o.Scale != 1 {
		o.LocalIters = int(float64(o.LocalIters)*o.Scale + 0.5)
		if o.LocalIters < 1 {
			o.LocalIters = 1
		}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// HeteroTracePoint is one best-cost observation on the wall clock.
type HeteroTracePoint struct {
	Seconds float64 `json:"seconds"`
	Cost    float64 `json:"cost"`
}

// HeteroSide is one side (static or adaptive) of the comparison.
type HeteroSide struct {
	WallSeconds   float64            `json:"wall_seconds"`
	BestCost      float64            `json:"best_cost"`
	Rebalances    int64              `json:"rebalances"`
	ForcedReports int64              `json:"forced_reports"`
	Trace         []HeteroTracePoint `json:"trace,omitempty"`
}

// HeteroReport is the BENCH_hetero.json schema.
type HeteroReport struct {
	Note        string `json:"note"`
	GoVersion   string `json:"go_version"`
	GeneratedAt string `json:"generated_at"`

	Circuit       string    `json:"circuit"`
	MachineSpeeds []float64 `json:"machine_speeds"`
	WorkScale     float64   `json:"work_scale"`
	GlobalIters   int       `json:"global_iters"`
	LocalIters    int       `json:"local_iters"`
	Seed          uint64    `json:"seed"`

	Static   HeteroSide `json:"static"`
	Adaptive HeteroSide `json:"adaptive"`
	// Speedup is static wall time over adaptive wall time at the equal
	// iteration budget.
	Speedup float64 `json:"speedup"`
}

// heteroCluster builds the emulated platform: machine 0 hosts the
// master, machine 1 the TSW (fast, so coordination is never the
// bottleneck), and machines 2..5 the four CLWs — one fast (4x), three
// slow (1x).
func heteroCluster() cluster.Cluster {
	speeds := []float64{1, 4, 4, 1, 1, 1}
	ms := make([]cluster.Machine, len(speeds))
	for i, s := range speeds {
		ms[i] = cluster.Machine{Name: fmt.Sprintf("h%02d", i), Speed: s}
	}
	base := cluster.Homogeneous(1, 1)
	return cluster.Cluster{Machines: ms, SendLatency: base.SendLatency, PerItem: base.PerItem}
}

// Hetero runs the static-vs-adaptive comparison and returns the report.
func Hetero(o HeteroOpts) (*HeteroReport, error) {
	o = o.withDefaults()
	nl, err := netlist.Benchmark(o.Circuit)
	if err != nil {
		return nil, err
	}
	clus := heteroCluster()

	cfg := core.DefaultConfig()
	cfg.TSWs, cfg.CLWs = 1, 4
	cfg.GlobalIters, cfg.LocalIters = o.GlobalIters, o.LocalIters
	cfg.Seed = o.Seed
	// Full collection: both sides run the identical iteration budget, so
	// the wall-time ratio isolates the partitioning policy (half-sync
	// would instead trade quality for time by truncating stragglers).
	cfg.HalfSync = false
	cfg.WorkScale = o.WorkScale
	// One wide sampling step per candidate: each iteration's critical
	// path is then exactly the per-step trial budget — the quantity the
	// adaptive scheduler balances — rather than the early-accept step
	// count, which varies stochastically and buries the scheduling
	// signal. The total trial work per iteration matches the default
	// m=12/d=4 budget at a quarter of the synchronization points.
	cfg.Trials, cfg.Depth = 64, 1

	run := func(adaptive bool) (HeteroSide, error) {
		c := cfg
		c.Adaptive = adaptive
		pp := cost.NewPlacementProblem(nl, c.Utilization, c.Cost)
		res, err := core.RunProblem(o.Context, pp, clus, c, core.Real)
		if err != nil {
			return HeteroSide{}, err
		}
		side := HeteroSide{
			WallSeconds:   res.Elapsed,
			BestCost:      res.BestCost,
			Rebalances:    res.Stats.Rebalances,
			ForcedReports: res.Stats.ForcedReports,
		}
		for _, p := range res.Trace.Points {
			side.Trace = append(side.Trace, HeteroTracePoint{Seconds: p.Time, Cost: p.Cost})
		}
		return side, nil
	}

	rep := &HeteroReport{
		Note:        "heterogeneous scheduling: static vs adaptive partitioning at equal iteration budget; regenerate with: ptsbench -hetero",
		GoVersion:   runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Circuit:     o.Circuit,
		WorkScale:   o.WorkScale,
		GlobalIters: o.GlobalIters,
		LocalIters:  o.LocalIters,
		Seed:        o.Seed,
	}
	for _, m := range clus.Machines {
		rep.MachineSpeeds = append(rep.MachineSpeeds, m.Speed)
	}
	if rep.Static, err = run(false); err != nil {
		return nil, err
	}
	if rep.Adaptive, err = run(true); err != nil {
		return nil, err
	}
	if rep.Adaptive.WallSeconds > 0 {
		rep.Speedup = rep.Static.WallSeconds / rep.Adaptive.WallSeconds
	}
	return rep, nil
}

// RenderHetero formats the report for the terminal.
func RenderHetero(rep *HeteroReport) string {
	out := fmt.Sprintf("hetero scenario: %s on speeds %v, %dx%d iterations, workscale %.0f\n",
		rep.Circuit, rep.MachineSpeeds, rep.GlobalIters, rep.LocalIters, rep.WorkScale)
	out += fmt.Sprintf("  static    %8.3fs wall   best %.4f\n", rep.Static.WallSeconds, rep.Static.BestCost)
	out += fmt.Sprintf("  adaptive  %8.3fs wall   best %.4f   (%d rebalances)\n",
		rep.Adaptive.WallSeconds, rep.Adaptive.BestCost, rep.Adaptive.Rebalances)
	out += fmt.Sprintf("  speedup   %.2fx at equal iteration budget\n", rep.Speedup)
	return out
}

// WriteHetero writes the report as <dir>/BENCH_hetero.json.
func WriteHetero(rep *HeteroReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_hetero.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
