package netlist

import (
	"strings"
	"testing"
)

// tiny builds a hand-written 5-cell circuit:
//
//	pi0 ──n0──► g0 ──n2──► po0
//	pi1 ──n1──► g0
//	pi1 ──n1──► g1 ──n3──► po0
func tiny(t *testing.T) *Netlist {
	t.Helper()
	nl := &Netlist{
		Name: "tiny",
		Cells: []Cell{
			{Name: "pi0", Width: 4, Delay: 0.02, Kind: Input},
			{Name: "pi1", Width: 4, Delay: 0.02, Kind: Input},
			{Name: "g0", Width: 6, Delay: 0.3, Kind: Gate},
			{Name: "g1", Width: 8, Delay: 0.2, Kind: Gate},
			{Name: "po0", Width: 4, Delay: 0.02, Kind: Output},
		},
		Nets: []Net{
			{Name: "n0", Driver: 0, Sinks: []CellID{2}},
			{Name: "n1", Driver: 1, Sinks: []CellID{2, 3}},
			{Name: "n2", Driver: 2, Sinks: []CellID{4}},
			{Name: "n3", Driver: 3, Sinks: []CellID{4}},
		},
	}
	if err := nl.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return nl
}

func TestFinishIndexes(t *testing.T) {
	nl := tiny(t)
	if got := nl.CellNets(2); len(got) != 3 { // n0, n1 (sink), n2 (driver)
		t.Errorf("CellNets(g0) = %v, want 3 nets", got)
	}
	if got := nl.Drives(2); len(got) != 1 || got[0] != 2 {
		t.Errorf("Drives(g0) = %v", got)
	}
	if got := nl.SinkNets(2); len(got) != 2 {
		t.Errorf("SinkNets(g0) = %v", got)
	}
	if nl.NumCells() != 5 || nl.NumNets() != 4 {
		t.Errorf("counts wrong: %d cells %d nets", nl.NumCells(), nl.NumNets())
	}
	if nl.TotalWidth() != 4+4+6+8+4 {
		t.Errorf("TotalWidth = %d", nl.TotalWidth())
	}
}

func TestLevelize(t *testing.T) {
	nl := tiny(t)
	if nl.Level(0) != 0 || nl.Level(1) != 0 {
		t.Error("inputs should be level 0")
	}
	if nl.Level(2) != 1 || nl.Level(3) != 1 {
		t.Errorf("gates should be level 1, got %d %d", nl.Level(2), nl.Level(3))
	}
	if nl.Level(4) != 2 || nl.MaxLevel() != 2 {
		t.Errorf("po0 level = %d, max = %d", nl.Level(4), nl.MaxLevel())
	}
	order := nl.TopoOrder()
	pos := make(map[CellID]int)
	for i, c := range order {
		pos[c] = i
	}
	for i := range nl.Nets {
		n := &nl.Nets[i]
		for _, s := range n.Sinks {
			if pos[n.Driver] >= pos[s] {
				t.Errorf("topo order violated: driver %d after sink %d", n.Driver, s)
			}
		}
	}
}

func TestFinishRejectsCycle(t *testing.T) {
	nl := &Netlist{
		Name: "cyc",
		Cells: []Cell{
			{Name: "a", Width: 1},
			{Name: "b", Width: 1},
		},
		Nets: []Net{
			{Name: "n0", Driver: 0, Sinks: []CellID{1}},
			{Name: "n1", Driver: 1, Sinks: []CellID{0}},
		},
	}
	if err := nl.Finish(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestFinishValidation(t *testing.T) {
	cases := []struct {
		name string
		nl   *Netlist
		want string
	}{
		{"empty", &Netlist{Name: "e"}, "no cells"},
		{"zero width", &Netlist{Name: "w", Cells: []Cell{{Name: "a", Width: 0}}}, "width"},
		{"neg delay", &Netlist{Name: "d", Cells: []Cell{{Name: "a", Width: 1, Delay: -1}}}, "delay"},
		{"bad driver", &Netlist{Name: "bd", Cells: []Cell{{Name: "a", Width: 1}},
			Nets: []Net{{Name: "n", Driver: 5, Sinks: []CellID{0}}}}, "driver"},
		{"no sinks", &Netlist{Name: "ns", Cells: []Cell{{Name: "a", Width: 1}},
			Nets: []Net{{Name: "n", Driver: 0}}}, "sinks"},
		{"bad sink", &Netlist{Name: "bs", Cells: []Cell{{Name: "a", Width: 1}},
			Nets: []Net{{Name: "n", Driver: 0, Sinks: []CellID{9}}}}, "sink"},
		{"dup terminal", &Netlist{Name: "dt", Cells: []Cell{{Name: "a", Width: 1}, {Name: "b", Width: 1}},
			Nets: []Net{{Name: "n", Driver: 0, Sinks: []CellID{1, 1}}}}, "twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.nl.Finish()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if Gate.String() != "gate" || Input.String() != "input" || Output.String() != "output" {
		t.Error("kind strings wrong")
	}
	if CellKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestComputeStats(t *testing.T) {
	nl := tiny(t)
	s := nl.ComputeStats()
	if s.Cells != 5 || s.Nets != 4 || s.Inputs != 2 || s.Outputs != 1 {
		t.Errorf("stats counts wrong: %+v", s)
	}
	if s.Pins != 2+3+2+2 {
		t.Errorf("pins = %d", s.Pins)
	}
	if s.LogicDepth != 2 {
		t.Errorf("depth = %d", s.LogicDepth)
	}
	if s.MaxNetDegree != 3 {
		t.Errorf("max degree = %d", s.MaxNetDegree)
	}
	if s.String() == "" {
		t.Error("stats String empty")
	}
}

func TestNetDegree(t *testing.T) {
	n := Net{Driver: 0, Sinks: []CellID{1, 2, 3}}
	if n.Degree() != 4 {
		t.Errorf("Degree = %d", n.Degree())
	}
}
