// Package sevo implements Simulated Evolution (SimE) for standard-cell
// placement — the algorithm of the paper's reference [5] (Sait, Youssef,
// Ali: "Fuzzy Simulated Evolution Algorithm for multi-objective
// optimization of VLSI placement"), which is also where the fuzzy
// goal-directed cost used throughout this repository comes from. It
// serves as the second domain-specific baseline next to simulated
// annealing.
//
// SimE iterates three phases over the placement:
//
//	evaluation — each cell gets a goodness in [0,1]: the ratio of an
//	             optimistic estimate of its connection span to its
//	             actual span in the current placement;
//	selection  — poorly placed cells are selected with probability
//	             1 − goodness − Bias;
//	allocation — selected cells are ripped up and greedily re-placed
//	             into the best of a sampled set of empty slots and
//	             pairwise swaps.
package sevo

import (
	"fmt"
	"math"

	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/rng"
	"pts/internal/stats"
)

// Config parameterizes a run.
type Config struct {
	// Iterations is the number of evaluation/selection/allocation
	// rounds.
	Iterations int
	// Bias shifts the selection probability: higher bias selects fewer
	// cells (classic SimE B, default 0.2).
	Bias float64
	// Candidates is how many alternative locations the allocator tries
	// per ripped cell (default 8).
	Candidates int
	// Seed drives selection and allocation sampling.
	Seed uint64
}

// withDefaults fills documented defaults.
func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	if c.Bias == 0 {
		c.Bias = 0.2
	}
	if c.Candidates <= 0 {
		c.Candidates = 8
	}
	return c
}

// Validate reports nonsensical parameters.
func (c Config) Validate() error {
	if c.Bias < -1 || c.Bias > 1 {
		return fmt.Errorf("sevo: bias %v outside [-1,1]", c.Bias)
	}
	return nil
}

// Result reports a run's outcome.
type Result struct {
	BestCost   float64
	BestPerm   []int32
	Iterations int
	Ripups     int64 // cells selected and re-placed
	Moves      int64 // relocations/swaps actually applied
	Trace      stats.Trace
}

// Minimize runs simulated evolution on the evaluator's placement. The
// evaluator is left at the last-visited solution; import
// Result.BestPerm for the best one.
func Minimize(ev *cost.Evaluator, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := rng.New(rng.Derive(cfg.Seed, "sevo"))
	p := ev.Placement()
	nl := p.Netlist()
	n := nl.NumCells()

	// Optimistic span per net: the smallest half-perimeter of any
	// region holding Degree() cells — 2·(ceil(sqrt(k))−1).
	optSpan := make([]float64, nl.NumNets())
	for i := range optSpan {
		k := float64(nl.Nets[i].Degree())
		side := math.Ceil(math.Sqrt(k)) - 1
		optSpan[i] = 2 * side
	}

	res := &Result{
		BestCost: ev.Cost(),
		BestPerm: ev.ExportPerm(),
	}
	res.Trace.Record(0, res.BestCost)

	goodness := make([]float64, n)
	selected := make([]netlist.CellID, 0, n)
	for it := 0; it < cfg.Iterations; it++ {
		// Evaluation.
		for c := 0; c < n; c++ {
			opt, act := 0.0, 0.0
			for _, nt := range nl.CellNets(netlist.CellID(c)) {
				opt += optSpan[nt]
				act += p.NetHPWL(nt)
			}
			switch {
			case act <= 0:
				goodness[c] = 1
			default:
				g := opt / act
				if g > 1 {
					g = 1
				}
				goodness[c] = g
			}
		}
		// Selection.
		selected = selected[:0]
		for c := 0; c < n; c++ {
			if r.Float64() > goodness[c]+cfg.Bias {
				selected = append(selected, netlist.CellID(c))
			}
		}
		// Allocation: greedy best-of-sampled per selected cell.
		for _, c := range selected {
			res.Ripups++
			bestDelta := 0.0
			bestSwap := netlist.None
			bestSlot := -1
			for t := 0; t < cfg.Candidates; t++ {
				if s := p.RandomEmptySlot(r); s >= 0 && r.Intn(2) == 0 {
					if d := ev.MoveDelta(c, p.Layout().SlotPos(s)); d < bestDelta {
						bestDelta, bestSlot, bestSwap = d, s, netlist.None
					}
					continue
				}
				o := netlist.CellID(r.Intn(n))
				if o == c {
					continue
				}
				if d := ev.SwapDelta(c, o); d < bestDelta {
					bestDelta, bestSwap, bestSlot = d, o, -1
				}
			}
			switch {
			case bestSlot >= 0:
				if err := ev.ApplyMove(c, p.Layout().SlotPos(bestSlot)); err != nil {
					return nil, err
				}
				res.Moves++
			case bestSwap != netlist.None:
				ev.ApplySwap(c, bestSwap)
				res.Moves++
			}
		}
		ev.Refresh() // resync timing criticalities once per round
		if c := ev.Cost(); c < res.BestCost {
			res.BestCost = c
			res.BestPerm = ev.ExportPerm()
		}
		res.Trace.Record(float64(it+1), res.BestCost)
		res.Iterations++
	}
	return res, nil
}
