package placement

import (
	"slices"

	"pts/internal/netlist"
)

// Batched trial evaluation: the data-parallel counterpart of
// SwapDeltaWeighted + MaxRowWidthAfterSwap. One call evaluates a whole
// candidate batch with the per-trial call overhead paid once: the CSR
// adjacency, the net-box array, the position array and the row/width
// state are hoisted into locals for the duration of the batch, and every
// box delta is computed by the same runner-up-statistics walk the scalar
// kernel uses, in one branch-light loop the out-of-order core can
// overlap across candidates. Batches large enough for the working set to
// fall out of cache are additionally visited in ascending first-cell
// order so neighboring candidates share net-box and row-cache loads.
//
// Determinism contract, strict mode (the default): for every candidate i
// the three outputs are bit-for-bit the values the scalar calls would
// produce — the merge walk visits affected nets in globally ascending
// net id exactly like SwapDeltaWeighted, so the float accumulation order
// is identical, and results land at the candidate's own index regardless
// of the internal visit order. This holds in both box layouts: per-net
// deltas are exact small integers either way (see box.go).
//
// Relaxed mode (SetRelaxedAccumulation(true)) reassociates the
// weighted-delta sum: each candidate's dWeighted is accumulated in
// independent lanes (one per merge-walk side, two-way unrolled tails)
// and summed pairwise at the end, breaking the serial FP-add dependency
// chain that bounds the strict kernel's throughput. The result can
// differ from the scalar path in final-ulp rounding, but the lane
// assignment is a pure function of the candidate's net visitation
// sequence, so relaxed results are themselves deterministic and
// reproducible (the relaxed goldens pin them). dLen and area are exact
// in both modes.

// SwapCand is one candidate pairwise exchange of a data-parallel
// evaluation batch, in cell-id terms.
type SwapCand struct {
	A, B netlist.CellID
}

// batchSortMin is the batch size from which SwapObjectivesBatch visits
// candidates in ascending first-cell order. Below it the sort costs more
// than the shared loads buy: at CLW batch sizes the boxes and CSR rows
// of benchmark-scale circuits are cache-resident anyway (profiling shows
// the sort at ~20% of batch time with no offsetting hit-rate gain), so
// sorting only pays once batches are large enough to thrash cache.
//
// The evaluation pool's shard size is capped below this constant so
// concurrent shards never touch the shared p.batchKeys scratch.
const batchSortMin = 512

// MaxConcurrentBatch is the largest candidate batch a concurrent caller
// (the cost evaluation pool) may pass to SwapObjectivesBatch with a
// non-nil w: at or below this size the call reads placement state only
// and touches no per-placement scratch, so shards over disjoint
// candidate (and output) ranges are race-free.
const MaxConcurrentBatch = batchSortMin - 1

// SwapObjectivesBatch evaluates every candidate swap's trial
// objectives against the current placement, without modifying it and
// without allocating (given warm scratch). For candidate i it writes:
//
//	dLen[i]      — the total HPWL change (SwapDeltaWeighted's first result)
//	dWeighted[i] — the w-weighted HPWL change (its second result)
//	area[i]      — the post-swap area objective (MaxRowWidthAfterSwap)
//
// w is indexed by net id (pass nil to skip the weighted sum, as in
// SwapDeltaWeighted); its entries must be finite. The three output
// slices must each have at least len(cands) elements.
//
// Concurrency: the call only reads placement state, but batches of
// batchSortMin or more candidates (and nil-w calls) use per-placement
// scratch — concurrent callers (the evaluation pool) must keep batches
// below batchSortMin and pass a non-nil w.
func (p *Placement) SwapObjectivesBatch(cands []SwapCand, w []float64, dLen, dWeighted, area []float64) {
	n := len(cands)
	if n == 0 {
		return
	}
	if w == nil {
		// A zero weight vector reproduces the nil-w scalar result (a
		// weighted delta of exactly +0.0) without a branch in the walk.
		if len(p.batchZeroW) < p.nl.NumNets() {
			p.batchZeroW = make([]float64, p.nl.NumNets())
		}
		w = p.batchZeroW
	}

	// Large batches are visited in ascending first-cell order so
	// candidates touching the same region walk the same stretch of the
	// CSR adjacency and net-box arrays back to back. The original index
	// rides in the key's low half; results are written through it, so the
	// visit order is invisible to callers. Small (hot-loop) batches skip
	// the key indirection entirely.
	sorted := n >= batchSortMin
	keys := p.batchKeys
	if sorted {
		if cap(keys) < n {
			keys = make([]int64, n)
			p.batchKeys = keys
		}
		keys = keys[:n]
		for i, c := range cands {
			keys[i] = int64(c.A)<<32 | int64(uint32(i))
		}
		slices.Sort(keys)
	} else {
		keys = nil
	}

	switch {
	case p.boxes16 != nil && p.relaxed:
		swapBatchRelaxed(p, p.boxes16, cands, keys, w, dLen, dWeighted, area)
	case p.boxes16 != nil:
		swapBatchStrict(p, p.boxes16, cands, keys, w, dLen, dWeighted, area)
	case p.relaxed:
		swapBatchRelaxed(p, p.boxes, cands, keys, w, dLen, dWeighted, area)
	default:
		swapBatchStrict(p, p.boxes, cands, keys, w, dLen, dWeighted, area)
	}
}

// swapBatchStrict is the bit-identity batch kernel, generic over the box
// layout: the merge walk, arithmetic and serial accumulation order are
// exactly SwapDeltaWeighted's. keys is nil for unsorted (small) batches.
//
// The per-net delta is trialDelta's arithmetic written out in the loop
// (axisExtent inlines; the composed trialDelta exceeds the inliner's
// budget inside the stenciled kernel and would cost a call per net), and
// the candidate's coordinates are converted to the box width C once, not
// per net.
func swapBatchStrict[C coord](p *Placement, boxes []netBoxT[C], cands []SwapCand, keys []int64, w []float64, dLen, dWeighted, area []float64) {
	// Batch-wide hoists: one load each instead of one per trial.
	pos := p.pos
	off, flat := p.nl.CellNetsCSR()
	widths := p.cellWidth
	rowW := p.rowWidth
	top1W, top2W := p.top1W, p.top2W
	top1Row, top2Row := p.top1Row, p.top2Row

	for t := 0; t < len(cands); t++ {
		idx := t
		if keys != nil { // loop-invariant: predicted perfectly
			idx = int(uint32(keys[t]))
		}
		a, b := cands[idx].A, cands[idx].B
		pa, pb := pos[a], pos[b]
		paCol, paRow := C(pa.Col), C(pa.Row)
		pbCol, pbRow := C(pb.Col), C(pb.Row)
		var di int32
		var dW float64
		if pa != pb {
			// Merge walk over the two sorted CSR net lists, skipping
			// shared nets; identical structure, arithmetic and
			// accumulation order to SwapDeltaWeighted.
			an := flat[off[a]:off[a+1]]
			bn := flat[off[b]:off[b+1]]
			i, j := 0, 0
			for i < len(an) && j < len(bn) {
				na, nb := an[i], bn[j]
				if na == nb { // shared net: box unchanged
					i++
					j++
					continue
				}
				nid := na
				fc, tc, fr, tr := paCol, pbCol, paRow, pbRow
				if na > nb {
					nid = nb
					fc, tc, fr, tr = pbCol, paCol, pbRow, paRow
					j++
				} else {
					i++
				}
				bx := &boxes[nid]
				d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, fc, tc)-(bx.maxX-bx.minX)) +
					int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, fr, tr)-(bx.maxY-bx.minY))
				if d != 0 {
					di += d
					dW += w[nid] * float64(d)
				}
			}
			for ; i < len(an); i++ {
				nid := an[i]
				bx := &boxes[nid]
				d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, paCol, pbCol)-(bx.maxX-bx.minX)) +
					int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, paRow, pbRow)-(bx.maxY-bx.minY))
				if d != 0 {
					di += d
					dW += w[nid] * float64(d)
				}
			}
			for ; j < len(bn); j++ {
				nid := bn[j]
				bx := &boxes[nid]
				d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, pbCol, paCol)-(bx.maxX-bx.minX)) +
					int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, pbRow, paRow)-(bx.maxY-bx.minY))
				if d != 0 {
					di += d
					dW += w[nid] * float64(d)
				}
			}
		}
		dLen[idx] = float64(di)
		dWeighted[idx] = dW

		// Area via the top-two row cache, inlined MaxRowWidthAfterSwap.
		m := top1W
		if ra, rb := pa.Row, pb.Row; ra != rb {
			wa, wb := widths[a], widths[b]
			if wa != wb {
				na := rowW[ra] + int(wb-wa)
				nb := rowW[rb] + int(wa-wb)
				// topExcluding(ra, rb), inlined.
				m = 0
				if top1Row != ra && top1Row != rb {
					m = top1W
				} else if top2Row >= 0 && top2Row != ra && top2Row != rb {
					m = top2W
				}
				if na > m {
					m = na
				}
				if nb > m {
					m = nb
				}
			}
		}
		area[idx] = float64(m)
	}
}

// swapBatchRelaxed is the reassociated batch kernel: dWeighted
// accumulates in independent lanes (one per merge-walk side; two-way
// unrolled one-sided tails) summed pairwise at the end, and the d != 0
// accumulation guard is dropped (a zero delta contributes an exact +0.0
// product), so consecutive FP adds are independent and the core can
// overlap them. Lane assignment depends only on the candidate's net
// visitation sequence — relaxed results are deterministic, just not
// bit-identical to the scalar path.
func swapBatchRelaxed[C coord](p *Placement, boxes []netBoxT[C], cands []SwapCand, keys []int64, w []float64, dLen, dWeighted, area []float64) {
	pos := p.pos
	off, flat := p.nl.CellNetsCSR()
	widths := p.cellWidth
	rowW := p.rowWidth
	top1W, top2W := p.top1W, p.top2W
	top1Row, top2Row := p.top1Row, p.top2Row

	for t := 0; t < len(cands); t++ {
		idx := t
		if keys != nil {
			idx = int(uint32(keys[t]))
		}
		a, b := cands[idx].A, cands[idx].B
		pa, pb := pos[a], pos[b]
		paCol, paRow := C(pa.Col), C(pa.Row)
		pbCol, pbRow := C(pb.Col), C(pb.Row)
		var di int32
		var dW0, dW1 float64
		if pa != pb {
			an := flat[off[a]:off[a+1]]
			bn := flat[off[b]:off[b+1]]
			i, j := 0, 0
			for i < len(an) && j < len(bn) {
				na, nb := an[i], bn[j]
				if na == nb { // shared net: box unchanged
					i++
					j++
					continue
				}
				if na < nb {
					bx := &boxes[na]
					d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, paCol, pbCol)-(bx.maxX-bx.minX)) +
						int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, paRow, pbRow)-(bx.maxY-bx.minY))
					di += d
					dW0 += w[na] * float64(d)
					i++
				} else {
					bx := &boxes[nb]
					d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, pbCol, paCol)-(bx.maxX-bx.minX)) +
						int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, pbRow, paRow)-(bx.maxY-bx.minY))
					di += d
					dW1 += w[nb] * float64(d)
					j++
				}
			}
			for ; i+1 < len(an); i += 2 {
				n0, n1 := an[i], an[i+1]
				b0, b1 := &boxes[n0], &boxes[n1]
				d0 := int32(axisExtent(b0.minX, b0.minX2, b0.maxX2, b0.maxX, paCol, pbCol)-(b0.maxX-b0.minX)) +
					int32(axisExtent(b0.minY, b0.minY2, b0.maxY2, b0.maxY, paRow, pbRow)-(b0.maxY-b0.minY))
				d1 := int32(axisExtent(b1.minX, b1.minX2, b1.maxX2, b1.maxX, paCol, pbCol)-(b1.maxX-b1.minX)) +
					int32(axisExtent(b1.minY, b1.minY2, b1.maxY2, b1.maxY, paRow, pbRow)-(b1.maxY-b1.minY))
				di += d0 + d1
				dW0 += w[n0] * float64(d0)
				dW1 += w[n1] * float64(d1)
			}
			if i < len(an) {
				nid := an[i]
				bx := &boxes[nid]
				d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, paCol, pbCol)-(bx.maxX-bx.minX)) +
					int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, paRow, pbRow)-(bx.maxY-bx.minY))
				di += d
				dW0 += w[nid] * float64(d)
			}
			for ; j+1 < len(bn); j += 2 {
				n0, n1 := bn[j], bn[j+1]
				b0, b1 := &boxes[n0], &boxes[n1]
				d0 := int32(axisExtent(b0.minX, b0.minX2, b0.maxX2, b0.maxX, pbCol, paCol)-(b0.maxX-b0.minX)) +
					int32(axisExtent(b0.minY, b0.minY2, b0.maxY2, b0.maxY, pbRow, paRow)-(b0.maxY-b0.minY))
				d1 := int32(axisExtent(b1.minX, b1.minX2, b1.maxX2, b1.maxX, pbCol, paCol)-(b1.maxX-b1.minX)) +
					int32(axisExtent(b1.minY, b1.minY2, b1.maxY2, b1.maxY, pbRow, paRow)-(b1.maxY-b1.minY))
				di += d0 + d1
				dW0 += w[n0] * float64(d0)
				dW1 += w[n1] * float64(d1)
			}
			if j < len(bn) {
				nid := bn[j]
				bx := &boxes[nid]
				d := int32(axisExtent(bx.minX, bx.minX2, bx.maxX2, bx.maxX, pbCol, paCol)-(bx.maxX-bx.minX)) +
					int32(axisExtent(bx.minY, bx.minY2, bx.maxY2, bx.maxY, pbRow, paRow)-(bx.maxY-bx.minY))
				di += d
				dW1 += w[nid] * float64(d)
			}
		}
		dLen[idx] = float64(di)
		dWeighted[idx] = dW0 + dW1

		// Area via the top-two row cache, inlined MaxRowWidthAfterSwap.
		m := top1W
		if ra, rb := pa.Row, pb.Row; ra != rb {
			wa, wb := widths[a], widths[b]
			if wa != wb {
				na := rowW[ra] + int(wb-wa)
				nb := rowW[rb] + int(wa-wb)
				// topExcluding(ra, rb), inlined.
				m = 0
				if top1Row != ra && top1Row != rb {
					m = top1W
				} else if top2Row >= 0 && top2Row != ra && top2Row != rb {
					m = top2W
				}
				if na > m {
					m = na
				}
				if nb > m {
					m = nb
				}
			}
		}
		area[idx] = float64(m)
	}
}
