// Command ptsbench regenerates the paper's evaluation figures
// (Figures 5–11) on the virtual heterogeneous cluster and writes ASCII
// charts to stdout and CSV files to an output directory.
//
// Usage:
//
//	ptsbench                     # all figures at full scale
//	ptsbench -fig 11 -v          # one figure, with per-run progress
//	ptsbench -scale 0.25         # quarter iteration budgets (quick look)
//	ptsbench -circuits highway,c532 -out results
//	ptsbench -hotpath            # trial-kernel microbench -> BENCH_hotpath.json
//	ptsbench -hetero             # static vs adaptive scheduling on a 4:1 skewed cluster -> BENCH_hetero.json
//	ptsbench -recovery           # fold-only vs respawn after a mid-run worker kill -> BENCH_recovery.json
//	ptsbench -serve              # multi-job scheduler throughput/latency on a shared fleet -> BENCH_serve.json
//	ptsbench -sched              # flow/job shop search quality + delta-kernel throughput -> BENCH_sched.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"pts/internal/bench"
)

func main() {
	var (
		fig          = flag.String("fig", "all", "figure to regenerate: 5..11 or 'all'")
		scale        = flag.Float64("scale", 1.0, "iteration budget multiplier (1.0 = paper scale)")
		repeats      = flag.Int("repeats", 0, "seeds per data point (0 = default)")
		seed         = flag.Uint64("seed", 0, "master experiment seed (0 = default)")
		clusterSeed  = flag.Uint64("cluster-seed", 0, "testbed load-trace seed (0 = default)")
		circuits     = flag.String("circuits", "", "comma-separated circuit subset (default: all four)")
		out          = flag.String("out", "results", "directory for CSV output")
		timeout      = flag.Duration("timeout", 0, "abort the sweep after this long (0 = unbounded)")
		verbose      = flag.Bool("v", false, "print one line per completed run")
		hotpath      = flag.Bool("hotpath", false, "measure the trial-evaluation hot path and write BENCH_hotpath.json")
		hotpathDur   = flag.Duration("hotpath-dur", time.Second, "measurement duration per hot-path kernel")
		hotpathGuard = flag.String("hotpath-guard", "", "with -hotpath: fail if any of these circuits' (comma-separated) trials/sec regressed below the previous committed results by more than -hotpath-tol, or if allocs_per_trial != 0 in the JSON")
		hotpathTol   = flag.Float64("hotpath-tol", 0.10, "relative throughput regression tolerance for -hotpath-guard")
		windows      = flag.Int("windows", bench.DefaultHotpathWindows, "best-of-K measurement windows per hot-path kernel; per-window stddev lands in the JSON")
		hetero       = flag.Bool("hetero", false, "compare static vs adaptive scheduling wall time on an emulated 1-fast/3-slow cluster and write BENCH_hetero.json")
		heteroScale  = flag.Float64("hetero-workscale", 0, "work emulation factor for -hetero (0 = default)")
		recovery     = flag.Bool("recovery", false, "compare fold-only vs respawn recovery after a mid-run worker kill over loopback TCP and write BENCH_recovery.json")
		recScale     = flag.Float64("recovery-workscale", 0, "work emulation factor for -recovery (0 = default)")
		recKillAt    = flag.Int("recovery-kill-round", 0, "round whose report triggers the -recovery kill (0 = default)")
		serveBench   = flag.Bool("serve", false, "measure the multi-job serving scheduler (jobs/minute, p50/p95 latency at 1 vs full-fleet concurrency) over a loopback fleet and write BENCH_serve.json + bench_serve.md")
		serveJobs    = flag.Int("serve-jobs", 0, "jobs per concurrency level for -serve (0 = default)")
		serveFleet   = flag.Int("serve-fleet", 0, "loopback fleet size for -serve (0 = default 4)")
		sched        = flag.Bool("sched", false, "run the engine over every embedded flow/job shop instance and measure the scalar vs batched delta kernels, writing BENCH_sched.json")
		schedDur     = flag.Duration("sched-dur", 0, "throughput sampling window per kernel for -sched (0 = default 300ms)")
	)
	flag.Parse()

	if *hotpath {
		var subset []string
		if *circuits != "" {
			subset = strings.Split(*circuits, ",")
		}
		rep, err := bench.Hotpath(subset, *hotpathDur, *windows)
		if err != nil {
			fatal(err)
		}
		path, err := bench.WriteHotpath(rep, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderHotpath(rep))
		fmt.Printf("wrote %s\n", path)
		if *hotpathGuard != "" {
			msg, err := bench.HotpathGuard(rep, *hotpathGuard, *hotpathTol)
			if err != nil {
				fatal(err)
			}
			fmt.Println(msg)
		}
		return
	}

	// Ctrl-C (or -timeout) cancels the sweep at the next protocol
	// boundary instead of leaving a half-written results directory.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *sched {
		rep, err := bench.Sched(bench.SchedOpts{
			Context:    ctx,
			Scale:      *scale,
			Seed:       *seed,
			MeasureDur: *schedDur,
		})
		if err != nil {
			fatal(err)
		}
		path, err := bench.WriteSched(rep, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderSched(rep))
		fmt.Printf("wrote %s\n", path)
		return
	}

	if *recovery {
		var circuit string
		if *circuits != "" {
			circuit = strings.Split(*circuits, ",")[0]
		}
		rep, err := bench.Recovery(bench.RecoveryOpts{
			Context:   ctx,
			Circuit:   circuit,
			WorkScale: *recScale,
			KillRound: *recKillAt,
			Scale:     *scale,
			Seed:      *seed,
		})
		if err != nil {
			fatal(err)
		}
		path, err := bench.WriteRecovery(rep, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderRecovery(rep))
		fmt.Printf("wrote %s\n", path)
		return
	}

	if *serveBench {
		var circuit string
		if *circuits != "" {
			circuit = strings.Split(*circuits, ",")[0]
		}
		rep, err := bench.Serve(bench.ServeOpts{
			Context:      ctx,
			Circuit:      circuit,
			FleetWorkers: *serveFleet,
			Jobs:         *serveJobs,
			Scale:        *scale,
			Seed:         *seed,
		})
		if err != nil {
			fatal(err)
		}
		path, err := bench.WriteServe(rep, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderServe(rep))
		fmt.Printf("wrote %s\n", path)
		return
	}

	if *hetero {
		// The hetero scenario compares one circuit; only the first
		// -circuits entry applies. -scale shrinks/grows the local
		// iteration budget like the figure drivers.
		var circuit string
		if *circuits != "" {
			circuit = strings.Split(*circuits, ",")[0]
		}
		rep, err := bench.Hetero(bench.HeteroOpts{
			Context:   ctx,
			Circuit:   circuit,
			WorkScale: *heteroScale,
			Scale:     *scale,
			Seed:      *seed,
		})
		if err != nil {
			fatal(err)
		}
		path, err := bench.WriteHetero(rep, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.RenderHetero(rep))
		fmt.Printf("wrote %s\n", path)
		return
	}

	opts := bench.Opts{
		Context:     ctx,
		Scale:       *scale,
		Repeats:     *repeats,
		Seed:        *seed,
		ClusterSeed: *clusterSeed,
	}
	if *circuits != "" {
		opts.Circuits = strings.Split(*circuits, ",")
	}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	drivers := map[string]func(bench.Opts) (*bench.Figure, error){
		"5": bench.Fig5, "6": bench.Fig6, "7": bench.Fig7, "8": bench.Fig8,
		"9": bench.Fig9, "10": bench.Fig10, "11": bench.Fig11,
		// Ablations beyond the paper (see DESIGN.md §6).
		"assign": bench.ExtraAssignment,
		"corr":   bench.ExtraCorrelation,
		"mpds":   bench.ExtraMPDS,
	}

	var figs []*bench.Figure
	if *fig == "all" {
		all, err := bench.All(opts)
		if err != nil {
			fatal(err)
		}
		figs = all
	} else {
		d, ok := drivers[*fig]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q (want 5..11, assign, corr, mpds, or all)", *fig))
		}
		f, err := d(opts)
		if err != nil {
			fatal(err)
		}
		figs = append(figs, f)
	}

	for _, f := range figs {
		fmt.Println(bench.RenderASCII(f))
		csvPath, err := bench.WriteCSV(f, *out)
		if err != nil {
			fatal(err)
		}
		svgPath, err := bench.WriteSVG(f, *out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s and %s\n\n", csvPath, svgPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptsbench:", err)
	os.Exit(1)
}
