package netlist

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	orig := MustGenerate(GenConfig{Name: "rt", Cells: 120, Seed: 3})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualNetlists(t, orig, got)
}

func TestJSONRoundTrip(t *testing.T) {
	orig := MustGenerate(GenConfig{Name: "json", Cells: 80, Seed: 9})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Netlist
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	assertEqualNetlists(t, orig, &got)
	// Indexes must be rebuilt by UnmarshalJSON.
	if len(got.CellNets(0)) == 0 {
		t.Error("indexes not rebuilt after JSON decode")
	}
}

func assertEqualNetlists(t *testing.T, a, b *Netlist) {
	t.Helper()
	if a.Name != b.Name {
		t.Fatalf("names differ: %q vs %q", a.Name, b.Name)
	}
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) {
		t.Fatalf("sizes differ: %d/%d cells, %d/%d nets",
			len(a.Cells), len(b.Cells), len(a.Nets), len(b.Nets))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d: %+v vs %+v", i, a.Cells[i], b.Cells[i])
		}
	}
	for i := range a.Nets {
		if a.Nets[i].Driver != b.Nets[i].Driver || a.Nets[i].Name != b.Nets[i].Name {
			t.Fatalf("net %d differs", i)
		}
		if len(a.Nets[i].Sinks) != len(b.Nets[i].Sinks) {
			t.Fatalf("net %d sink counts differ", i)
		}
		for j := range a.Nets[i].Sinks {
			if a.Nets[i].Sinks[j] != b.Nets[i].Sinks[j] {
				t.Fatalf("net %d sink %d differs", i, j)
			}
		}
	}
}

func TestReadComments(t *testing.T) {
	src := `
# a comment
circuit c

cell a 4 0.1 input
cell b 5 0.2 gate
cell c 4 0.1 output
net n1 a b
net n2 b c
`
	nl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "c" || nl.NumCells() != 3 || nl.NumNets() != 2 {
		t.Fatalf("parsed wrong: %s %d %d", nl.Name, nl.NumCells(), nl.NumNets())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad directive", "frob x\n", "unknown directive"},
		{"circuit arity", "circuit a b\n", "circuit"},
		{"cell arity", "cell a 4\n", "cell"},
		{"bad width", "cell a x 0.1 gate\n", "width"},
		{"bad delay", "cell a 4 zz gate\n", "delay"},
		{"bad kind", "cell a 4 0.1 flipflop\n", "kind"},
		{"dup cell", "cell a 4 0.1 gate\ncell a 4 0.1 gate\n", "duplicate"},
		{"net arity", "net n a\n", "net"},
		{"unknown driver", "cell a 4 0.1 input\ncell b 4 .1 output\nnet n zz b\n", "driver"},
		{"unknown sink", "cell a 4 0.1 input\ncell b 4 .1 output\nnet n a zz\n", "sink"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

func TestReadRejectsInvalidStructure(t *testing.T) {
	// Valid syntax but cyclic: Finish must reject it.
	src := `circuit cyc
cell a 4 0.1 gate
cell b 4 0.1 gate
net n1 a b
net n2 b a
`
	if _, err := Read(strings.NewReader(src)); err == nil {
		t.Fatal("cyclic netlist should fail to read")
	}
}
