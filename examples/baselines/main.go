// Baselines: the same placement instance attacked three ways at a
// comparable move-evaluation budget — memoryless simulated annealing,
// sequential tabu search, and the paper's parallel tabu search — and
// what each costs in (virtual) wall-clock time on one reference
// machine versus the 12-machine cluster.
//
// The point the numbers make: on a single machine the sequential
// methods pay for every evaluation in wall-clock time, while the
// parallel search reaches comparable quality several times sooner —
// the paper's goal was exactly this time-to-quality advantage.
//
//	go run ./examples/baselines
package main

import (
	"context"
	"fmt"
	"log"

	"pts"
	"pts/internal/anneal"
	"pts/internal/core"
	"pts/internal/cost"
	"pts/internal/netlist"
	"pts/internal/placement"
	"pts/internal/rng"
	"pts/internal/sevo"
	"pts/internal/tabu"
)

func main() {
	nl := netlist.MustBenchmark("c532")
	const seed = 7

	// One shared initial solution so costs are directly comparable.
	mkProb := func() cost.Problem {
		p, err := placement.New(nl, placement.AutoLayout(nl, 0.9))
		if err != nil {
			log.Fatal(err)
		}
		p.Randomize(rng.New(rng.Derive(seed, "core.initial", nl.Name)))
		ev, err := cost.NewEvaluator(p, cost.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		return cost.Problem{Ev: ev}
	}
	initial := mkProb().Cost()
	// The virtual cost of one trial evaluation on the reference
	// machine; the same constant the cluster model charges.
	workPerTrial := core.DefaultConfig().WorkPerTrial
	fmt.Printf("circuit %s, initial cost %.4f\n\n", nl.Name, initial)
	fmt.Printf("%-28s %-11s %-13s %-12s\n", "method", "best cost", "improvement", "time-to-run")

	// Simulated annealing (the memoryless baseline of the paper's intro).
	saProb := mkProb()
	sa, err := anneal.Minimize(saProb, anneal.Config{Seed: seed, MovesPerTemp: 8 * nl.NumCells(), Alpha: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, best, seconds float64) {
		fmt.Printf("%-28s %-11.4f %-13s %.2f s\n", name, best,
			fmt.Sprintf("%.1f%%", 100*(initial-best)/initial), seconds)
	}
	report("simulated annealing", sa.BestCost, float64(sa.Steps)*workPerTrial)

	// Simulated evolution (the paper's reference [5], where the fuzzy
	// cost formulation originates).
	seProb := mkProb()
	se, err := sevo.Minimize(seProb.Ev, sevo.Config{Iterations: 60, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	// SimE evaluates ~Candidates trials per ripup.
	seEvals := float64(se.Ripups * 8)
	report("simulated evolution", se.BestCost, seEvals*workPerTrial)

	// Sequential tabu search at a matching evaluation budget.
	tsProb := mkProb()
	params := tabu.DefaultParams()
	params.Trials, params.Depth, params.Seed = 12, 4, seed
	ts := tabu.NewSearch(tsProb, params)
	tsIters := int(sa.Steps) / (params.Trials * params.Depth)
	ts.Run(tsIters)
	report("sequential tabu search", ts.BestCost(),
		float64(tsIters*params.Trials*params.Depth)*workPerTrial)

	// The paper's parallel tabu search (4 TSWs x 2 CLWs, half-sync),
	// run through the public API on the same circuit and seed.
	prob, err := pts.PlacementBenchmark(nl.Name)
	if err != nil {
		log.Fatal(err)
	}
	par, err := pts.Solve(context.Background(), prob,
		pts.WithWorkers(4, 2),
		pts.WithCluster(pts.Testbed12(12)),
		pts.WithSeed(seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	report("parallel tabu search (4x2)", par.BestCost, par.Elapsed)

	fmt.Printf("\nSA evaluated %d moves, TS %d, PTS %d — but PTS spreads them over 12 machines:\n",
		sa.Steps, int64(tsIters*params.Trials*params.Depth), par.Stats.TrialsCharged)
	fmt.Printf("it reaches %.4f while the single-machine methods are still mid-schedule.\n", par.BestCost)
	fmt.Println("(Memoryless SA is a strong opponent on this smooth fuzzy landscape when")
	fmt.Println("given the same evaluation count; the parallel search's edge is time.)")
}
